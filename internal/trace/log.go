package trace

import (
	"bufio"
	"errors"
	"fmt"
	"io"
	"strconv"
	"strings"

	"dcc/internal/geom"
	"dcc/internal/graph"
)

// Packet-log format. The paper's pipeline starts from raw GreenOrbs packet
// logs; this file defines the equivalent textual log for the synthetic
// trace so the accumulate→threshold→extract pipeline can also run from a
// file, exactly as it would from a real deployment's data.
//
//	# greenorbs-sim v1 nodes=<total> interior=<interior> epochs=<epochs>
//	ring <id> <id> ...
//	pos <id> <x> <y>            (optional; simulation ground truth)
//	pkt <epoch> <src> <peer>:<rssi> <peer>:<rssi> ...
//
// RSSI values are dBm with one decimal. Unknown directives are rejected:
// a coverage deployment should fail loudly on malformed observations.

// logVersion is the current log format version string.
const logVersion = "greenorbs-sim v1"

// ErrBadLog is wrapped by all log-parsing errors.
var ErrBadLog = errors.New("trace: malformed packet log")

// GenerateWithLog is Generate that additionally streams every packet to w
// as it is produced.
func GenerateWithLog(cfg Config, w io.Writer) (*Trace, error) {
	cfg = cfg.ApplyDefaults()
	tr := generate(cfg, w)
	if tr.logErr != nil {
		return nil, tr.logErr
	}
	return tr, nil
}

// WriteHeader emits the log preamble for a trace (metadata, ring, node
// positions). Used by GenerateWithLog before the packet stream.
func writeHeader(w io.Writer, cfg Config, t *Trace) error {
	if _, err := fmt.Fprintf(w, "# %s nodes=%d interior=%d epochs=%d\n",
		logVersion, len(t.Pts), cfg.InteriorNodes, cfg.Epochs); err != nil {
		return err
	}
	var b strings.Builder
	b.WriteString("ring")
	for _, v := range t.Ring {
		fmt.Fprintf(&b, " %d", v)
	}
	b.WriteByte('\n')
	if _, err := io.WriteString(w, b.String()); err != nil {
		return err
	}
	for i, p := range t.Pts {
		if _, err := fmt.Fprintf(w, "pos %d %.3f %.3f\n", i, p.X, p.Y); err != nil {
			return err
		}
	}
	return nil
}

// maxLogLine bounds one packet-log line. Real lines are a few hundred
// bytes (one pkt record per source per epoch); anything beyond this is a
// damaged or hostile log, rejected before it can balloon memory.
const maxLogLine = 1 << 20

// readLogLine reads one newline-terminated line from r without ever
// buffering more than maxLogLine bytes. It reports whether the line was
// terminated: a final line without its newline is a truncated record, and
// ParseLog rejects it — the same torn-tail discipline the binary record
// framing (frame.go) applies to the WAL.
func readLogLine(r *bufio.Reader) (line string, terminated bool, err error) {
	var buf []byte
	for {
		frag, err := r.ReadSlice('\n')
		buf = append(buf, frag...)
		if len(buf) > maxLogLine {
			return "", false, fmt.Errorf("oversized record (exceeds %d bytes)", maxLogLine)
		}
		switch err {
		case nil:
			return string(buf[:len(buf)-1]), true, nil
		case bufio.ErrBufferFull:
			continue
		case io.EOF:
			return string(buf), false, nil
		default:
			return "", false, err
		}
	}
}

// ParseLog reconstructs a Trace from a packet log: records are accumulated
// exactly as Generate does in memory, so UndirectedEdges, thresholds and
// Network all work on the result.
//
// The reader is strict: unknown directives, out-of-range ids, directives
// preceding the header, oversized lines, and a truncated final record (a
// log that ends without a newline — a torn write) are all rejected with
// descriptive errors wrapping ErrBadLog. A coverage deployment should fail
// loudly on damaged observations, never silently drop them.
func ParseLog(r io.Reader) (*Trace, error) {
	br := bufio.NewReaderSize(r, 1<<16)

	t := &Trace{
		rssiSum: make(map[[2]graph.NodeID]float64),
		rssiN:   make(map[[2]graph.NodeID]int),
	}
	total := -1
	lineNo := 0
	for {
		raw, terminated, err := readLogLine(br)
		if err != nil {
			return nil, fmt.Errorf("%w: line %d: %v", ErrBadLog, lineNo+1, err)
		}
		if raw == "" && !terminated {
			break // clean EOF at a record boundary
		}
		lineNo++
		if !terminated {
			return nil, fmt.Errorf("%w: line %d: truncated record (log ends without newline)", ErrBadLog, lineNo)
		}
		line := strings.TrimSpace(raw)
		if line == "" {
			continue
		}
		fields := strings.Fields(line)
		switch fields[0] {
		case "#":
			rest := strings.TrimSpace(strings.TrimPrefix(line, "#"))
			if !strings.HasPrefix(rest, logVersion) {
				return nil, fmt.Errorf("%w: line %d: unsupported version %q", ErrBadLog, lineNo, rest)
			}
			for _, kv := range strings.Fields(strings.TrimPrefix(rest, logVersion)) {
				k, v, ok := strings.Cut(kv, "=")
				if !ok {
					return nil, fmt.Errorf("%w: line %d: bad header field %q", ErrBadLog, lineNo, kv)
				}
				n, err := strconv.Atoi(v)
				if err != nil {
					return nil, fmt.Errorf("%w: line %d: %v", ErrBadLog, lineNo, err)
				}
				switch k {
				case "nodes":
					total = n
					t.Pts = make([]geom.Point, n)
				case "interior", "epochs":
					// informational
				default:
					return nil, fmt.Errorf("%w: line %d: unknown header key %q", ErrBadLog, lineNo, k)
				}
			}
		case "ring":
			if total < 0 {
				return nil, fmt.Errorf("%w: line %d: ring directive before header", ErrBadLog, lineNo)
			}
			for _, f := range fields[1:] {
				id, err := parseID(f, total)
				if err != nil {
					return nil, fmt.Errorf("%w: line %d: %v", ErrBadLog, lineNo, err)
				}
				t.Ring = append(t.Ring, id)
			}
		case "pos":
			if total < 0 {
				return nil, fmt.Errorf("%w: line %d: pos directive before header", ErrBadLog, lineNo)
			}
			if len(fields) != 4 {
				return nil, fmt.Errorf("%w: line %d: pos needs 3 arguments", ErrBadLog, lineNo)
			}
			id, err := parseID(fields[1], total)
			if err != nil {
				return nil, fmt.Errorf("%w: line %d: %v", ErrBadLog, lineNo, err)
			}
			x, errX := strconv.ParseFloat(fields[2], 64)
			y, errY := strconv.ParseFloat(fields[3], 64)
			if errX != nil || errY != nil {
				return nil, fmt.Errorf("%w: line %d: bad coordinates", ErrBadLog, lineNo)
			}
			// parseID range-checked id against the header's node count, so
			// the index is always in bounds here.
			t.Pts[id] = geom.Point{X: x, Y: y}
		case "pkt":
			if total < 0 {
				return nil, fmt.Errorf("%w: line %d: pkt directive before header", ErrBadLog, lineNo)
			}
			if len(fields) < 3 {
				return nil, fmt.Errorf("%w: line %d: pkt needs epoch and source", ErrBadLog, lineNo)
			}
			if _, err := strconv.Atoi(fields[1]); err != nil {
				return nil, fmt.Errorf("%w: line %d: bad epoch: %v", ErrBadLog, lineNo, err)
			}
			src, err := parseID(fields[2], total)
			if err != nil {
				return nil, fmt.Errorf("%w: line %d: %v", ErrBadLog, lineNo, err)
			}
			for _, rec := range fields[3:] {
				peerStr, rssiStr, ok := strings.Cut(rec, ":")
				if !ok {
					return nil, fmt.Errorf("%w: line %d: bad record %q", ErrBadLog, lineNo, rec)
				}
				peer, err := parseID(peerStr, total)
				if err != nil {
					return nil, fmt.Errorf("%w: line %d: %v", ErrBadLog, lineNo, err)
				}
				rssi, err := strconv.ParseFloat(rssiStr, 64)
				if err != nil {
					return nil, fmt.Errorf("%w: line %d: bad rssi %q", ErrBadLog, lineNo, rssiStr)
				}
				key := [2]graph.NodeID{src, peer}
				t.rssiSum[key] += rssi
				t.rssiN[key]++
			}
		default:
			return nil, fmt.Errorf("%w: line %d: unknown directive %q", ErrBadLog, lineNo, fields[0])
		}
	}
	if total < 0 {
		return nil, fmt.Errorf("%w: missing header", ErrBadLog)
	}
	if len(t.Ring) == 0 {
		return nil, fmt.Errorf("%w: missing ring", ErrBadLog)
	}
	return t, nil
}

func parseID(s string, total int) (graph.NodeID, error) {
	n, err := strconv.Atoi(s)
	if err != nil {
		return 0, fmt.Errorf("bad node id %q: %v", s, err)
	}
	if n < 0 || (total >= 0 && n >= total) {
		return 0, fmt.Errorf("node id %d out of range [0,%d)", n, total)
	}
	return graph.NodeID(n), nil
}
