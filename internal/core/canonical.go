package core

import (
	"container/heap"

	"dcc/internal/graph"
	"dcc/internal/runner"
	"dcc/internal/vpt"
)

// The canonical scheduling engine. Sequential and Parallel shuffle their
// work orders from a live rand.Rand, so two runs over the same topology
// agree only if they replay the same deletion history — which a streaming
// engine that crashes, recovers, and batches events cannot promise.
// Canonical removes the history: the deletion order is a fixed
// priority-queue order whose per-node priorities are a pure function of
// (seed, node ID), making the kept set a pure function of the topology.
// That is the property the streaming layer's convergence contract stands
// on (DESIGN.md §13): any two paths to the same materialized topology —
// event replay, WAL recovery, from-scratch batch — elect byte-identical
// covers.

// streamCanonicalPriority is the DeriveSeed stream of the canonical
// engine's per-node deletion priorities (the node ID rides in the run
// slot). The value spells "cano" in ASCII and stays far above the
// experiment stream table in internal/experiments/streams.go, next to
// streamBiasedShuffle ("bias"); TestStreamRegistry pins the separation.
const streamCanonicalPriority uint64 = 0x63616e6f

// CanonicalPriority returns the deletion priority of v under base seed
// seed: lower priorities are tested (and therefore deleted) first, ties
// cannot occur across distinct nodes of one run because the pair (priority,
// ID) is totally ordered. Exported so the streaming engine's memoized
// re-election (internal/stream) provably replays the same order.
func CanonicalPriority(seed int64, v graph.NodeID) uint64 {
	return uint64(runner.DeriveSeed(seed, streamCanonicalPriority, int(v)))
}

// prioItem is one pending deletability test of the canonical engine.
type prioItem struct {
	prio uint64
	v    graph.NodeID
}

// prioQueue is a min-heap on (priority, ID).
type prioQueue []prioItem

func (q prioQueue) Len() int { return len(q) }
func (q prioQueue) Less(i, j int) bool {
	if q[i].prio != q[j].prio {
		return q[i].prio < q[j].prio
	}
	return q[i].v < q[j].v
}
func (q prioQueue) Swap(i, j int) { q[i], q[j] = q[j], q[i] }
func (q *prioQueue) Push(x any)   { *q = append(*q, x.(prioItem)) }
func (q *prioQueue) Pop() any {
	old := *q
	n := len(old)
	it := old[n-1]
	*q = old[:n-1]
	return it
}

// CanonicalElect runs the canonical greedy to fixpoint over cache: internal
// nodes are tested in increasing (CanonicalPriority, ID) order, a deletable
// node is committed immediately, and the dirtied survivors re-enter the
// queue. test supplies the deletability verdict of a node on the current
// residual — cache.Deletable for the batch engine, the fingerprint-memoized
// variant for the streaming engine — and MUST equal VertexDeletable on the
// materialized live graph, or the fixpoint diverges from the canonical one.
// Returns the deleted nodes in deletion order and the number of tests.
//
// The loop body is shared by both engines on purpose: the convergence
// contract ("streaming state equals the batch schedule of the materialized
// topology") then reduces to the equality of the two verdict functions,
// which the dccdebug cross-checks and the differential suite verify.
func CanonicalElect(net Network, seed int64, cache *vpt.Cache, test func(v graph.NodeID) bool) (deleted []graph.NodeID, tests int) {
	internal := net.InternalNodes()
	q := make(prioQueue, 0, len(internal))
	pending := make(map[graph.NodeID]bool, len(internal))
	for _, v := range internal {
		q = append(q, prioItem{prio: CanonicalPriority(seed, v), v: v})
		pending[v] = true
	}
	heap.Init(&q)
	for q.Len() > 0 {
		it := heap.Pop(&q).(prioItem)
		if !pending[it.v] {
			continue // stale entry: already tested since it was last dirtied
		}
		pending[it.v] = false
		if !cache.Alive(it.v) {
			continue
		}
		tests++
		if !test(it.v) {
			continue
		}
		deleted = append(deleted, it.v)
		for _, w := range cache.Commit([]graph.NodeID{it.v}) {
			if !net.Boundary[w] && !pending[w] {
				pending[w] = true
				heap.Push(&q, prioItem{prio: CanonicalPriority(seed, w), v: w})
			}
		}
	}
	return deleted, tests
}

func scheduleCanonical(net Network, opts Options) (Result, error) {
	cache := vpt.NewCache(net.G, opts.Tau)
	cache.Instrument(opts.Telemetry)
	deleted, tests := CanonicalElect(net, opts.Seed, cache, cache.Deletable)
	stats := Stats{Rounds: 1, Tests: tests}
	return finishResult(net, cache.LiveGraph(), deleted, stats), nil
}
