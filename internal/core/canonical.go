package core

import (
	"container/heap"

	"dcc/internal/graph"
	"dcc/internal/runner"
	"dcc/internal/vpt"
)

// The canonical scheduling engine. Sequential and Parallel shuffle their
// work orders from a live rand.Rand, so two runs over the same topology
// agree only if they replay the same deletion history — which a streaming
// engine that crashes, recovers, and batches events cannot promise.
// Canonical removes the history: the deletion order is a fixed
// priority-queue order whose per-node priorities are a pure function of
// (seed, node ID), making the kept set a pure function of the topology.
// That is the property the streaming layer's convergence contract stands
// on (DESIGN.md §13): any two paths to the same materialized topology —
// event replay, WAL recovery, from-scratch batch — elect byte-identical
// covers.

// streamCanonicalPriority is the DeriveSeed stream of the canonical
// engine's per-node deletion priorities (the node ID rides in the run
// slot). The value spells "cano" in ASCII and stays far above the
// experiment stream table in internal/experiments/streams.go, next to
// streamBiasedShuffle ("bias"); TestStreamRegistry pins the separation.
const streamCanonicalPriority uint64 = 0x63616e6f

// CanonicalPriority returns the deletion priority of v under base seed
// seed: lower priorities are tested (and therefore deleted) first, ties
// cannot occur across distinct nodes of one run because the pair (priority,
// ID) is totally ordered. Exported so the streaming engine's memoized
// re-election (internal/stream) provably replays the same order.
func CanonicalPriority(seed int64, v graph.NodeID) uint64 {
	return uint64(runner.DeriveSeed(seed, streamCanonicalPriority, int(v)))
}

// prioItem is one pending deletability test of the canonical engine.
type prioItem struct {
	prio uint64
	v    graph.NodeID
}

// prioQueue is a min-heap on (priority, ID).
type prioQueue []prioItem

func (q prioQueue) Len() int { return len(q) }
func (q prioQueue) Less(i, j int) bool {
	if q[i].prio != q[j].prio {
		return q[i].prio < q[j].prio
	}
	return q[i].v < q[j].v
}
func (q prioQueue) Swap(i, j int) { q[i], q[j] = q[j], q[i] }
func (q *prioQueue) Push(x any)   { *q = append(*q, x.(prioItem)) }
func (q *prioQueue) Pop() any {
	old := *q
	n := len(old)
	it := old[n-1]
	*q = old[:n-1]
	return it
}

// ElectionQueue is the canonical election's work queue: a min-heap over
// (CanonicalPriority, ID) with pending-set deduplication. Popping a node
// marks it not-pending; pushing a node that is already pending is a no-op,
// so a node is tested at most once per dirtying no matter how many commits
// touched its neighbourhood. Exported so the spatial shard engine
// (internal/shard) provably consumes nodes in the exact order the
// unsharded CanonicalElect does — the queue is the shared definition of
// "canonical order", not a convention.
type ElectionQueue struct {
	seed    int64
	q       prioQueue
	pending map[graph.NodeID]bool
}

// NewElectionQueue returns a queue seeded with the given nodes, all
// pending.
func NewElectionQueue(seed int64, nodes []graph.NodeID) *ElectionQueue {
	eq := &ElectionQueue{
		seed:    seed,
		q:       make(prioQueue, 0, len(nodes)),
		pending: make(map[graph.NodeID]bool, len(nodes)),
	}
	for _, v := range nodes {
		eq.q = append(eq.q, prioItem{prio: CanonicalPriority(seed, v), v: v})
		eq.pending[v] = true
	}
	heap.Init(&eq.q)
	return eq
}

// Len returns the number of heap entries (stale entries included); zero
// means the election has reached its fixpoint.
func (eq *ElectionQueue) Len() int { return eq.q.Len() }

// Pop returns the pending node with the smallest (priority, ID), marking
// it not-pending, with ok = false when the queue is exhausted. Stale
// entries (popped nodes re-tested since their last dirtying) are skipped.
func (eq *ElectionQueue) Pop() (v graph.NodeID, ok bool) {
	for eq.q.Len() > 0 {
		it := heap.Pop(&eq.q).(prioItem)
		if !eq.pending[it.v] {
			continue // stale entry: already tested since it was last dirtied
		}
		eq.pending[it.v] = false
		return it.v, true
	}
	return 0, false
}

// Peek returns the smallest pending (priority, node) without consuming
// it, with ok = false when the queue is exhausted. Stale heap entries are
// discarded on the way. The shard coordinator uses Peek to validate batch
// replay: a speculatively popped node may only be consumed while no
// pending node orders before it — otherwise the sequential engine would
// have popped the pending node first, and the batch member is deferred.
func (eq *ElectionQueue) Peek() (prio uint64, v graph.NodeID, ok bool) {
	for eq.q.Len() > 0 {
		it := eq.q[0]
		if !eq.pending[it.v] {
			heap.Pop(&eq.q)
			continue
		}
		return it.prio, it.v, true
	}
	return 0, 0, false
}

// Push marks v pending and enqueues it at its canonical priority; a no-op
// if v is already pending. Used both to re-enqueue dirtied survivors and
// to defer a popped node whose test must wait (the shard coordinator's
// conflict push-back) — the priority is a pure function of (seed, ID), so
// a deferred node re-enters at exactly its canonical position.
func (eq *ElectionQueue) Push(v graph.NodeID) {
	if eq.pending[v] {
		return
	}
	eq.pending[v] = true
	heap.Push(&eq.q, prioItem{prio: CanonicalPriority(eq.seed, v), v: v})
}

// CanonicalElect runs the canonical greedy to fixpoint over cache: internal
// nodes are tested in increasing (CanonicalPriority, ID) order, a deletable
// node is committed immediately, and the dirtied survivors re-enter the
// queue. test supplies the deletability verdict of a node on the current
// residual — cache.Deletable for the batch engine, the fingerprint-memoized
// variant for the streaming engine — and MUST equal VertexDeletable on the
// materialized live graph, or the fixpoint diverges from the canonical one.
// Returns the deleted nodes in deletion order and the number of tests.
//
// The loop body is shared by both engines on purpose: the convergence
// contract ("streaming state equals the batch schedule of the materialized
// topology") then reduces to the equality of the two verdict functions,
// which the dccdebug cross-checks and the differential suite verify. The
// shard engine shares the ElectionQueue instead and batches independent
// tests (pairwise more than ⌈τ/2⌉ hops apart), which DESIGN.md §15 proves
// commutes with this sequential loop.
func CanonicalElect(net Network, seed int64, cache *vpt.Cache, test func(v graph.NodeID) bool) (deleted []graph.NodeID, tests int) {
	eq := NewElectionQueue(seed, net.InternalNodes())
	for {
		v, ok := eq.Pop()
		if !ok {
			break
		}
		if !cache.Alive(v) {
			continue
		}
		tests++
		if !test(v) {
			continue
		}
		deleted = append(deleted, v)
		for _, w := range cache.Commit([]graph.NodeID{v}) {
			if !net.Boundary[w] {
				eq.Push(w)
			}
		}
	}
	return deleted, tests
}

func scheduleCanonical(net Network, opts Options) (Result, error) {
	cache := vpt.NewCache(net.G, opts.Tau)
	cache.Instrument(opts.Telemetry)
	deleted, tests := CanonicalElect(net, opts.Seed, cache, cache.Deletable)
	stats := Stats{Rounds: 1, Tests: tests}
	return finishResult(net, cache.LiveGraph(), deleted, stats), nil
}
