package core

import (
	"math/rand"
	"reflect"
	"sort"
	"testing"

	"dcc/internal/graph"
	"dcc/internal/runner"
	"dcc/internal/vpt"
)

// This file pins the byte-identical acceptance criterion of the incremental
// deletability engine: the cache-backed schedulers must produce exactly the
// Result the pre-cache engines produced. The reference engines below are
// verbatim reimplementations of the old rebuild-the-graph-per-deletion code
// paths (see git history); they consume the same rng in the same order, so
// any divergence — in the final graph, the deletion order, or the stats —
// is a real behavioural change, not seed drift.

func referenceSequential(net Network, opts Options) Result {
	rng := rand.New(rand.NewSource(opts.Seed))
	g := net.G
	k := vpt.NeighborhoodRadius(opts.Tau)

	queue := net.InternalNodes()
	rng.Shuffle(len(queue), func(i, j int) { queue[i], queue[j] = queue[j], queue[i] })
	inQueue := make(map[graph.NodeID]bool, len(queue))
	for _, v := range queue {
		inQueue[v] = true
	}

	var deleted []graph.NodeID
	stats := Stats{Rounds: 1}
	for len(queue) > 0 {
		v := queue[0]
		queue = queue[1:]
		inQueue[v] = false
		if !g.HasNode(v) {
			continue
		}
		stats.Tests++
		if !vpt.VertexDeletable(g, v, opts.Tau) {
			continue
		}
		affected := g.KHopNeighbors(v, k)
		g = g.DeleteVertices([]graph.NodeID{v})
		deleted = append(deleted, v)
		for _, w := range affected {
			if !net.Boundary[w] && g.HasNode(w) && !inQueue[w] {
				inQueue[w] = true
				queue = append(queue, w)
			}
		}
	}
	return finishResult(net, g, deleted, stats)
}

func referenceParallel(net Network, opts Options) Result {
	rng := rand.New(rand.NewSource(opts.Seed))
	g := net.G
	k := vpt.NeighborhoodRadius(opts.Tau)
	m := vpt.IndependenceRadius(opts.Tau)

	dirty := make(map[graph.NodeID]bool)
	for _, v := range net.InternalNodes() {
		dirty[v] = true
	}
	deletable := make(map[graph.NodeID]bool)

	var deleted []graph.NodeID
	var stats Stats
	for {
		var toTest []graph.NodeID
		for v := range dirty {
			if g.HasNode(v) {
				toTest = append(toTest, v)
			}
		}
		sort.Slice(toTest, func(i, j int) bool { return toTest[i] < toTest[j] })
		results, _ := runner.Map(len(toTest), opts.Workers, func(i int) (bool, error) {
			return vpt.VertexDeletable(g, toTest[i], opts.Tau), nil
		})
		stats.Tests += len(toTest)
		for i, v := range toTest {
			deletable[v] = results[i]
			delete(dirty, v)
		}

		var candidates []graph.NodeID
		for _, v := range g.Nodes() {
			if deletable[v] && !net.Boundary[v] {
				candidates = append(candidates, v)
			}
		}
		if len(candidates) == 0 {
			break
		}
		stats.Rounds++

		rng.Shuffle(len(candidates), func(i, j int) {
			candidates[i], candidates[j] = candidates[j], candidates[i]
		})
		blocked := make(map[graph.NodeID]bool)
		var selected []graph.NodeID
		for _, v := range candidates {
			if blocked[v] {
				continue
			}
			selected = append(selected, v)
			blocked[v] = true
			for _, w := range g.KHopNeighbors(v, m-1) {
				blocked[w] = true
			}
		}

		affected := make(map[graph.NodeID]bool)
		for _, v := range selected {
			for _, w := range g.KHopNeighbors(v, k) {
				affected[w] = true
			}
		}
		g = g.DeleteVertices(selected)
		deleted = append(deleted, selected...)
		for _, v := range selected {
			delete(deletable, v)
			delete(affected, v)
		}
		//lint:ordered map-to-map write; dirty is drained into a sorted slice each round
		for w := range affected {
			if !net.Boundary[w] && g.HasNode(w) {
				dirty[w] = true
			}
		}
	}
	return finishResult(net, g, deleted, stats)
}

func compareResults(t *testing.T, label string, got, want Result) {
	t.Helper()
	if !reflect.DeepEqual(got.Final, want.Final) {
		t.Fatalf("%s: Final graph differs (got %d nodes, want %d)", label, got.Final.NumNodes(), want.Final.NumNodes())
	}
	if !reflect.DeepEqual(got.Deleted, want.Deleted) {
		t.Fatalf("%s: deletion order differs\ngot:  %v\nwant: %v", label, got.Deleted, want.Deleted)
	}
	if !reflect.DeepEqual(got.Kept, want.Kept) || !reflect.DeepEqual(got.KeptInternal, want.KeptInternal) {
		t.Fatalf("%s: kept sets differ", label)
	}
	if got.Stats != want.Stats {
		t.Fatalf("%s: stats differ: got %+v, want %+v", label, got.Stats, want.Stats)
	}
}

// TestSequentialMatchesReference: the cache-backed sequential engine must
// reproduce the pre-cache engine byte for byte — same final graph, same
// deletion order, same test count.
func TestSequentialMatchesReference(t *testing.T) {
	for _, tau := range []int{3, 4, 6} {
		for seed := int64(1); seed <= 3; seed++ {
			net := denseNet(t, seed, 7, 7, 1.7)
			got, err := Schedule(net, Options{Tau: tau, Seed: seed, Mode: Sequential})
			if err != nil {
				t.Fatalf("tau=%d seed=%d: %v", tau, seed, err)
			}
			want := referenceSequential(net, Options{Tau: tau, Seed: seed})
			compareResults(t, "sequential", got, want)
		}
	}
}

// TestParallelMatchesReference: same for the MIS round engine, across
// worker counts (the reference is itself worker-count invariant).
func TestParallelMatchesReference(t *testing.T) {
	for _, tau := range []int{3, 5} {
		for seed := int64(1); seed <= 2; seed++ {
			net := denseNet(t, seed, 7, 7, 1.7)
			want := referenceParallel(net, Options{Tau: tau, Seed: seed, Workers: 1})
			for _, workers := range []int{1, 4} {
				got, err := Schedule(net, Options{Tau: tau, Seed: seed, Mode: Parallel, Workers: workers})
				if err != nil {
					t.Fatalf("tau=%d seed=%d workers=%d: %v", tau, seed, workers, err)
				}
				compareResults(t, "parallel", got, want)
			}
		}
	}
}

// TestBiasedMatchesReference pins Rotate's duty-biased engine the same way.
func TestBiasedMatchesReference(t *testing.T) {
	net := denseNet(t, 5, 6, 6, 1.7)
	duty := map[graph.NodeID]int{7: 3, 8: 1, 14: 2}
	got, err := scheduleBiased(net, Options{Tau: 4, Seed: 5}, duty, 2)
	if err != nil {
		t.Fatal(err)
	}
	want := referenceBiased(net, Options{Tau: 4, Seed: 5}, duty, 2)
	compareResults(t, "biased", got, want)
}

func referenceBiased(net Network, opts Options, duty map[graph.NodeID]int, salt int64) Result {
	rng := rand.New(rand.NewSource(runner.DeriveSeed(opts.Seed, streamBiasedShuffle, int(salt))))
	g := net.G
	k := vpt.NeighborhoodRadius(opts.Tau)

	queue := net.InternalNodes()
	rng.Shuffle(len(queue), func(i, j int) { queue[i], queue[j] = queue[j], queue[i] })
	sort.SliceStable(queue, func(i, j int) bool {
		return duty[queue[i]] > duty[queue[j]]
	})
	inQueue := make(map[graph.NodeID]bool, len(queue))
	for _, v := range queue {
		inQueue[v] = true
	}

	var deleted []graph.NodeID
	stats := Stats{Rounds: 1}
	for len(queue) > 0 {
		v := queue[0]
		queue = queue[1:]
		inQueue[v] = false
		if !g.HasNode(v) {
			continue
		}
		stats.Tests++
		if !vpt.VertexDeletable(g, v, opts.Tau) {
			continue
		}
		affected := g.KHopNeighbors(v, k)
		g = g.DeleteVertices([]graph.NodeID{v})
		deleted = append(deleted, v)
		for _, w := range affected {
			if !net.Boundary[w] && g.HasNode(w) && !inQueue[w] {
				inQueue[w] = true
				queue = append(queue, w)
			}
		}
	}
	return finishResult(net, g, deleted, stats)
}
