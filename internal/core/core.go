// Package core implements the paper's primary contribution: the DCC
// (distributed confine coverage) scheduling algorithm and the
// cycle-partition coverage criterion it maintains.
//
// The package is purely graph-theoretic — it never sees coordinates. Its
// input is a connectivity graph plus the boundary information the paper
// assumes as given (§III-A): which nodes are boundary nodes, and the
// boundary cycles (as vertex orders). Its output is a sparse coverage set:
// a subgraph in which the boundary cycles remain τ-partitionable
// (Propositions 2/3) and from which no further node can be removed by the
// void-preserving transformation.
//
// Two scheduling engines are provided:
//
//   - sequential maximal vertex deletion (the reference oracle), and
//   - round-based parallel deletion via m-hop maximal independent sets,
//     the structure the distributed runtime (internal/dist) realises with
//     real message passing.
package core

import (
	"errors"
	"fmt"
	"math"
	"math/rand"
	"sort"
	"sync"

	"dcc/internal/bitvec"
	"dcc/internal/cycles"
	"dcc/internal/graph"
	"dcc/internal/runner"
	"dcc/internal/telemetry"
	"dcc/internal/vpt"
)

// ErrNoFeasibleTau is returned by PlanTau when no confine size ≥ 3
// satisfies the coverage requirement.
var ErrNoFeasibleTau = errors.New("core: no feasible confine size for the requirement")

// ErrTauTooSmall is wrapped by every scheduling entry point handed a
// confine size below the minimum of 3 (a 2-gon is not a cycle; the
// void-preserving transformation is undefined). Match with errors.Is.
var ErrTauTooSmall = errors.New("core: confine size below the minimum of 3")

// Network is the graph-theoretic input of the scheduler.
type Network struct {
	// G is the connectivity graph.
	G *graph.Graph
	// Boundary marks undeletable nodes (the periphery band, plus any
	// virtual repair nodes).
	Boundary map[graph.NodeID]bool
	// BoundaryCycles holds the boundary cycles as vertex orders, outer
	// cycle first. Every listed vertex must be in Boundary.
	BoundaryCycles [][]graph.NodeID
}

// Validate checks structural consistency of the network description.
func (n Network) Validate() error {
	if n.G == nil {
		return errors.New("core: nil graph")
	}
	if len(n.BoundaryCycles) == 0 {
		return errors.New("core: no boundary cycles")
	}
	for ci, cyc := range n.BoundaryCycles {
		if len(cyc) < 3 {
			return fmt.Errorf("core: boundary cycle %d has %d vertices", ci, len(cyc))
		}
		for i := range cyc {
			if !n.G.HasNode(cyc[i]) {
				return fmt.Errorf("core: boundary cycle %d vertex %d not in graph", ci, cyc[i])
			}
			if !n.Boundary[cyc[i]] {
				return fmt.Errorf("core: boundary cycle %d vertex %d not marked as boundary", ci, cyc[i])
			}
			if _, ok := n.G.EdgeIndex(cyc[i], cyc[(i+1)%len(cyc)]); !ok {
				return fmt.Errorf("core: boundary cycle %d edge {%d,%d} missing",
					ci, cyc[i], cyc[(i+1)%len(cyc)])
			}
		}
	}
	return nil
}

// InternalNodes returns the nodes of g not marked as boundary, sorted.
func (n Network) InternalNodes() []graph.NodeID {
	var out []graph.NodeID
	for _, v := range n.G.Nodes() {
		if !n.Boundary[v] {
			out = append(out, v)
		}
	}
	return out
}

// BoundaryTarget returns the GF(2) sum of the boundary cycles as an
// incidence vector over g's edge indices. g must contain every boundary
// edge (boundary nodes are never deleted, so this holds across scheduling).
func BoundaryTarget(g *graph.Graph, boundaryCycles [][]graph.NodeID) (bitvec.Vector, error) {
	target := bitvec.New(g.NumEdges())
	for ci, cyc := range boundaryCycles {
		c, err := cycles.FromVertices(g, cyc)
		if err != nil {
			return bitvec.Vector{}, fmt.Errorf("boundary cycle %d: %w", ci, err)
		}
		target.Xor(c.Vector(g.NumEdges()))
	}
	return target, nil
}

// VerifyConfine checks the global cycle-partition coverage criterion
// (Propositions 2 and 3): the GF(2) sum of the boundary cycles must be
// expressible as a sum of cycles of length ≤ tau in g.
func VerifyConfine(g *graph.Graph, boundaryCycles [][]graph.NodeID, tau int) (bool, error) {
	target, err := BoundaryTarget(g, boundaryCycles)
	if err != nil {
		return false, err
	}
	return cycles.Partitionable(g, target, tau), nil
}

// ErrNotAchievable is returned by AchievableTau when no confine size within
// the bound makes the boundary partitionable.
var ErrNotAchievable = errors.New("core: boundary not partitionable within the tau bound")

// AchievableTau returns the smallest confine size τ ∈ [3, maxTau] for which
// the boundary cycles are τ-partitionable in the network's graph. Scheduling
// with τ below this value preserves nothing (Theorem 5's precondition
// fails); scheduling at or above it is guaranteed to keep the criterion.
func AchievableTau(net Network, maxTau int) (int, error) {
	if err := net.Validate(); err != nil {
		return 0, err
	}
	target, err := BoundaryTarget(net.G, net.BoundaryCycles)
	if err != nil {
		return 0, err
	}
	for tau := 3; tau <= maxTau; tau++ {
		if cycles.Partitionable(net.G, target, tau) {
			return tau, nil
		}
	}
	return 0, ErrNotAchievable
}

// Mode selects the scheduling engine.
type Mode int

const (
	// Sequential deletes one locally-deletable node at a time (reference
	// oracle for the distributed algorithm).
	Sequential Mode = iota + 1
	// Parallel deletes an m-hop maximal independent set of candidates per
	// round — the structure of the paper's distributed algorithm.
	Parallel
	// Canonical deletes in a fixed priority-queue order derived from
	// (Seed, node ID) alone, making the kept set a pure function of the
	// topology — the replay-independent mode the streaming engine's
	// convergence contract is stated against (see canonical.go).
	Canonical
)

// Options configures scheduling.
type Options struct {
	// Tau is the confine size (≥ 3).
	Tau int
	// Seed drives all randomized choices (node order, MIS priorities).
	Seed int64
	// Mode selects the engine; default Sequential.
	Mode Mode
	// Workers bounds the concurrency of deletability tests in Parallel
	// mode; 0 means GOMAXPROCS.
	Workers int
	// Telemetry, when non-nil, receives the run's metrics: the core.runs /
	// core.rounds / core.tests / core.deletions counters, the vpt cache
	// series (vpt.lookups, vpt.computes, vpt.invalidated, vpt.dirty_ball),
	// and — when the registry has a clock — the core.schedule span. All
	// deterministic series are worker-count-invariant; collection never
	// changes the Result.
	Telemetry *telemetry.Registry
}

// Stats records the work performed by a scheduling run. The field
// vocabulary (Rounds, Tests, Deletions) is shared with the distributed
// runtime's Stats so centralized and distributed runs report comparably.
type Stats struct {
	// Rounds is the number of deletion rounds (1 for sequential runs).
	Rounds int
	// Tests counts void-preserving-transformation evaluations.
	Tests int
	// Deletions counts removed nodes.
	Deletions int
	// Deleted is the former name of Deletions, kept in sync for one final
	// release.
	//
	// Deprecated: use Deletions. This alias is scheduled for removal in
	// the next release; no code in this module may read it (the alias
	// audit in api_test.go fails the build on new internal uses), and the
	// only writer is the finishResult sync that keeps external readers
	// working through the deprecation window.
	Deleted int
}

// Result is the output of a scheduling run.
type Result struct {
	// Final is the reduced graph: the coverage set plus boundary nodes.
	Final *graph.Graph
	// Kept lists the remaining nodes (boundary and internal), sorted.
	Kept []graph.NodeID
	// KeptInternal lists the remaining internal (non-boundary) nodes.
	KeptInternal []graph.NodeID
	// Deleted lists the removed nodes, in deletion order.
	Deleted []graph.NodeID
	// Stats summarises the run.
	Stats Stats
}

// Schedule runs maximal vertex deletion under the τ-void-preserving
// transformation and returns the resulting sparse coverage set.
func Schedule(net Network, opts Options) (Result, error) {
	if err := net.Validate(); err != nil {
		return Result{}, err
	}
	if opts.Tau < 3 {
		return Result{}, fmt.Errorf("core: tau %d: %w", opts.Tau, ErrTauTooSmall)
	}
	if opts.Mode == 0 {
		opts.Mode = Sequential
	}
	sp := opts.Telemetry.StartSpan("core.schedule")
	defer sp.End()
	var (
		res Result
		err error
	)
	switch opts.Mode {
	case Sequential:
		res, err = scheduleSequential(net, opts)
	case Parallel:
		res, err = scheduleParallel(net, opts)
	case Canonical:
		res, err = scheduleCanonical(net, opts)
	default:
		return Result{}, fmt.Errorf("core: unknown mode %d", opts.Mode)
	}
	if err == nil && opts.Telemetry != nil {
		reg := opts.Telemetry
		reg.Counter("core.runs").Inc()
		reg.Counter("core.rounds").Add(int64(res.Stats.Rounds))
		reg.Counter("core.tests").Add(int64(res.Stats.Tests))
		reg.Counter("core.deletions").Add(int64(res.Stats.Deletions))
	}
	return res, err
}

func finishResult(net Network, g *graph.Graph, deleted []graph.NodeID, stats Stats) Result {
	kept := g.Nodes()
	var internal []graph.NodeID
	for _, v := range kept {
		if !net.Boundary[v] {
			internal = append(internal, v)
		}
	}
	stats.Deletions = len(deleted)
	stats.Deleted = stats.Deletions
	return Result{
		Final:        g,
		Kept:         kept,
		KeptInternal: internal,
		Deleted:      deleted,
		Stats:        stats,
	}
}

func scheduleSequential(net Network, opts Options) (Result, error) {
	rng := rand.New(rand.NewSource(opts.Seed))
	cache := vpt.NewCache(net.G, opts.Tau)
	cache.Instrument(opts.Telemetry)

	queue := net.InternalNodes()
	rng.Shuffle(len(queue), func(i, j int) { queue[i], queue[j] = queue[j], queue[i] })
	inQueue := make(map[graph.NodeID]bool, len(queue))
	for _, v := range queue {
		inQueue[v] = true
	}

	var deleted []graph.NodeID
	stats := Stats{Rounds: 1}
	for len(queue) > 0 {
		v := queue[0]
		queue = queue[1:]
		inQueue[v] = false
		if !cache.Alive(v) {
			continue
		}
		stats.Tests++
		if !cache.Deletable(v) {
			continue
		}
		deleted = append(deleted, v)
		// Commit invalidates exactly the ≤ k-hop ball around v — the nodes
		// whose Γ^k contained v — and returns them for retesting.
		for _, w := range cache.Commit([]graph.NodeID{v}) {
			if !net.Boundary[w] && !inQueue[w] {
				inQueue[w] = true
				queue = append(queue, w)
			}
		}
	}
	return finishResult(net, cache.LiveGraph(), deleted, stats), nil
}

// testChunk is the fan-out batch size for cache-miss deletability tests in
// the parallel engine. It is a fixed constant — never derived from the
// worker count — so the work decomposition, and therefore the output, is
// identical for every Options.Workers value. Batching matters on the pool:
// a single test is microseconds on dense patches, and dispatching each one
// as its own pool task made the parallel engine slower than sequential
// (the 0.94× inversion recorded in BENCH_parallel.json).
const testChunk = 16

// testKit is the per-worker scratch bundle for batched deletability tests.
type testKit struct {
	s *graph.Scratch
	t *vpt.Tester
}

var kitPool = sync.Pool{New: func() any {
	return &testKit{s: graph.NewScratch(nil), t: vpt.NewTester()}
}}

// cachedVerdicts evaluates the deletability of toTest (all cache-stale)
// and publishes the verdicts into the cache. Small batches run inline on
// the cache's own scratch; larger ones fan out in fixed-size chunks on the
// deterministic pool, each chunk with pooled per-worker scratch, and the
// memo writes happen after the join (workers never touch shared state).
func cachedVerdicts(cache *vpt.Cache, toTest []graph.NodeID, workers int) []bool {
	out := make([]bool, len(toTest))
	if len(toTest) <= testChunk {
		for i, v := range toTest {
			out[i] = cache.Deletable(v)
		}
		return out
	}
	nchunks := (len(toTest) + testChunk - 1) / testChunk
	// Deletability of distinct vertices is independent given a fixed live
	// view, so the chunks fan out on the deterministic pool; the result
	// slice is index-ordered regardless of the worker count.
	chunks, _ := runner.Map(nchunks, workers, func(ci int) ([]bool, error) {
		kit := kitPool.Get().(*testKit)
		defer kitPool.Put(kit)
		lo := ci * testChunk
		hi := lo + testChunk
		if hi > len(toTest) {
			hi = len(toTest)
		}
		vals := make([]bool, hi-lo)
		for i := lo; i < hi; i++ {
			//lint:ignore barrier ComputeFresh is read-only by the Cache contract (no memo access, caller-owned scratch); verdicts are published via Store after the join
			vals[i-lo] = cache.ComputeFresh(toTest[i], kit.s, kit.t)
		}
		return vals, nil
	})
	i := 0
	for _, ch := range chunks {
		i += copy(out[i:], ch)
	}
	for i, v := range toTest {
		cache.Store(v, out[i])
	}
	return out
}

func scheduleParallel(net Network, opts Options) (Result, error) {
	rng := rand.New(rand.NewSource(opts.Seed))
	cache := vpt.NewCache(net.G, opts.Tau)
	cache.Instrument(opts.Telemetry)
	view := cache.View()
	m := vpt.IndependenceRadius(opts.Tau)
	scratch := graph.NewScratch(net.G)

	// dirty marks nodes whose neighbourhood changed since their last test;
	// everything starts dirty. Clean nodes previously tested not-deletable
	// stay not-deletable until a neighbour within k hops disappears.
	dirty := make(map[graph.NodeID]bool)
	for _, v := range net.InternalNodes() {
		dirty[v] = true
	}
	deletable := make(map[graph.NodeID]bool)

	var deleted []graph.NodeID
	var stats Stats
	for {
		// Retest dirty internal nodes concurrently.
		var toTest []graph.NodeID
		for v := range dirty {
			if cache.Alive(v) {
				toTest = append(toTest, v)
			}
		}
		sort.Slice(toTest, func(i, j int) bool { return toTest[i] < toTest[j] })
		verdicts := cachedVerdicts(cache, toTest, opts.Workers)
		stats.Tests += len(toTest)
		for i, v := range toTest {
			deletable[v] = verdicts[i]
			delete(dirty, v)
		}

		var candidates []graph.NodeID
		for _, v := range cache.LiveNodes() {
			if deletable[v] && !net.Boundary[v] {
				candidates = append(candidates, v)
			}
		}
		if len(candidates) == 0 {
			break
		}
		stats.Rounds++

		// Random-priority greedy m-hop MIS: process candidates in a random
		// order; select one if no already-selected node is within m−1 hops
		// (pairwise distance ≥ m ⇒ independent tests, §V-B).
		rng.Shuffle(len(candidates), func(i, j int) {
			candidates[i], candidates[j] = candidates[j], candidates[i]
		})
		blocked := make(map[graph.NodeID]bool)
		var selected []graph.NodeID
		for _, v := range candidates {
			if blocked[v] {
				continue
			}
			selected = append(selected, v)
			blocked[v] = true
			for _, w := range view.KHopBall(v, m-1, scratch) {
				blocked[w] = true
			}
		}

		// Delete the independent set simultaneously; Commit dirties every
		// survivor within k hops of a deleted node.
		affected := cache.Commit(selected)
		deleted = append(deleted, selected...)
		for _, v := range selected {
			delete(deletable, v)
		}
		for _, w := range affected {
			if !net.Boundary[w] {
				dirty[w] = true
			}
		}
	}
	return finishResult(net, cache.LiveGraph(), deleted, stats), nil
}

// VerifyNonRedundant checks Definition 6 on a scheduling result: removing
// any single kept internal node must break τ-partitionability of the
// boundary. (Single-node checks suffice because the criterion is monotone
// in the node set.) It returns the first violating node if any. This is an
// exhaustive global check — quadratic in practice — intended for tests and
// small networks.
func VerifyNonRedundant(net Network, final *graph.Graph, tau int) (bool, graph.NodeID, error) {
	for _, v := range final.Nodes() {
		if net.Boundary[v] {
			continue
		}
		reduced := final.DeleteVertices([]graph.NodeID{v})
		ok, err := VerifyConfine(reduced, net.BoundaryCycles, tau)
		if err != nil {
			return false, v, err
		}
		if ok {
			return false, v, nil
		}
	}
	return true, 0, nil
}

// RepairBoundaries implements the paper's multi-boundary preprocessing
// (§V-B): all boundary cycles except the first (the outer one) are filled
// with a cone — a fresh virtual node adjacent to every vertex of that
// cycle. Virtual nodes are marked as boundary (undeletable). The returned
// network shares no mutable state with the input.
func RepairBoundaries(net Network) (Network, []graph.NodeID, error) {
	if err := net.Validate(); err != nil {
		return Network{}, nil, err
	}
	if len(net.BoundaryCycles) <= 1 {
		return net, nil, nil
	}
	b := graph.NewBuilder()
	for _, v := range net.G.Nodes() {
		b.AddNode(v)
	}
	for _, e := range net.G.Edges() {
		b.AddEdge(e.U, e.V)
	}
	nextID := graph.NodeID(0)
	for _, v := range net.G.Nodes() {
		if v >= nextID {
			nextID = v + 1
		}
	}
	newBoundary := make(map[graph.NodeID]bool, len(net.Boundary))
	//lint:ordered pure map copy; iteration order cannot escape
	for v, ok := range net.Boundary {
		newBoundary[v] = ok
	}
	var virtual []graph.NodeID
	for _, cyc := range net.BoundaryCycles[1:] {
		apex := nextID
		nextID++
		virtual = append(virtual, apex)
		newBoundary[apex] = true
		for _, v := range cyc {
			b.AddEdge(apex, v)
		}
	}
	out := Network{
		G:              b.MustBuild(),
		Boundary:       newBoundary,
		BoundaryCycles: net.BoundaryCycles,
	}
	return out, virtual, nil
}

// Requirement expresses a coverage demand following Proposition 1.
type Requirement struct {
	// Gamma is the sensing ratio γ = Rc/Rs.
	Gamma float64
	// MaxHoleDiameter is the admissible worst-case hole diameter in units
	// of Rc; 0 demands full blanket coverage.
	MaxHoleDiameter float64
}

// PlanTau returns the largest confine size τ ≥ 3 that satisfies the
// requirement under Proposition 1:
//
//   - blanket coverage (Dmax = 0) holds when γ ≤ 2·sin(π/τ);
//   - otherwise partial coverage guarantees Dmax ≤ (τ−2)·Rc.
//
// Larger τ admits sparser coverage sets, so the maximum feasible τ is the
// efficient choice.
func PlanTau(req Requirement) (int, error) {
	if req.Gamma <= 0 {
		return 0, fmt.Errorf("core: non-positive gamma %v", req.Gamma)
	}
	best := 0
	// Blanket branch: γ ≤ 2 sin(π/τ) ⇔ τ ≤ π / asin(γ/2) (for γ ≤ 2). The
	// epsilon absorbs floating-point error at exact thresholds (γ=1 ⇒ τ=6).
	if req.Gamma <= 2 {
		tauBlanket := int(math.Floor(math.Pi/math.Asin(req.Gamma/2) + 1e-9))
		if tauBlanket >= 3 {
			best = tauBlanket
		}
	}
	// Partial branch: (τ−2) ≤ Dmax/Rc. Only meaningful when a hole is
	// admissible at all, and only under the paper's γ ≤ 2 regime.
	if req.MaxHoleDiameter > 0 && req.Gamma <= 2 {
		tauPartial := int(math.Floor(req.MaxHoleDiameter)) + 2
		if tauPartial >= 3 && tauPartial > best {
			best = tauPartial
		}
	}
	if best < 3 {
		return 0, ErrNoFeasibleTau
	}
	return best, nil
}
