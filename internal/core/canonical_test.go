package core

import (
	"reflect"
	"testing"

	"dcc/internal/graph"
	"dcc/internal/vpt"
)

// TestCanonicalPreservesCriterion: the canonical engine is still a maximal
// vertex deletion under the void-preserving transformation — the criterion
// survives and the result is non-redundant.
func TestCanonicalPreservesCriterion(t *testing.T) {
	net := denseNet(t, 41, 7, 7, 1.6)
	for _, tau := range []int{3, 4, 5} {
		res, err := Schedule(net, Options{Tau: tau, Seed: 9, Mode: Canonical})
		if err != nil {
			t.Fatal(err)
		}
		ok, err := VerifyConfine(res.Final, net.BoundaryCycles, tau)
		if err != nil {
			t.Fatal(err)
		}
		if !ok {
			t.Fatalf("tau %d: canonical schedule broke the criterion", tau)
		}
		nr, v, err := VerifyNonRedundant(net, res.Final, tau)
		if err != nil {
			t.Fatal(err)
		}
		if !nr {
			t.Fatalf("tau %d: canonical result redundant at node %d", tau, v)
		}
		if res.Stats.Rounds != 1 || res.Stats.Tests == 0 || res.Stats.Deletions != len(res.Deleted) {
			t.Fatalf("tau %d: implausible stats %+v", tau, res.Stats)
		}
	}
}

// TestCanonicalIsPureFunctionOfTopology pins the property the streaming
// convergence contract stands on: the canonical schedule depends only on
// (topology, tau, seed) — identical across repeated runs, and identical on
// a structurally equal graph rebuilt through a different code path.
func TestCanonicalIsPureFunctionOfTopology(t *testing.T) {
	net := denseNet(t, 43, 6, 6, 1.6)
	opts := Options{Tau: 4, Seed: 17, Mode: Canonical}
	a, err := Schedule(net, opts)
	if err != nil {
		t.Fatal(err)
	}
	b, err := Schedule(net, opts)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(a.Kept, b.Kept) || !reflect.DeepEqual(a.Deleted, b.Deleted) {
		t.Fatal("canonical schedule differs across identical runs")
	}

	// Rebuild the same topology through the overlay materialization path
	// (a different constructor than the deployment used) and re-schedule.
	rebuilt := net
	rebuilt.G = graph.NewDeleteView(net.G).Materialize()
	c, err := Schedule(rebuilt, opts)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(a.Kept, c.Kept) || !reflect.DeepEqual(a.Deleted, c.Deleted) {
		t.Fatal("canonical schedule differs on a structurally equal rebuilt graph")
	}

	// A different seed is allowed (and on dense nets, expected) to elect a
	// different deletion order.
	d, err := Schedule(net, Options{Tau: 4, Seed: 18, Mode: Canonical})
	if err != nil {
		t.Fatal(err)
	}
	if len(d.Kept) == 0 {
		t.Fatal("schedule with alternate seed kept nothing")
	}
}

// TestCanonicalElectMatchesSchedule: the exported loop with cache.Deletable
// as the verdict function is exactly the Canonical mode — the identity the
// streaming engine's memoized re-election builds on.
func TestCanonicalElectMatchesSchedule(t *testing.T) {
	net := denseNet(t, 47, 6, 6, 1.6)
	opts := Options{Tau: 3, Seed: 5, Mode: Canonical}
	res, err := Schedule(net, opts)
	if err != nil {
		t.Fatal(err)
	}
	cache := vpt.NewCache(net.G, opts.Tau)
	deleted, tests := CanonicalElect(net, opts.Seed, cache, cache.Deletable)
	if !reflect.DeepEqual(deleted, res.Deleted) {
		t.Fatalf("CanonicalElect deleted %v, Schedule deleted %v", deleted, res.Deleted)
	}
	if tests != res.Stats.Tests {
		t.Fatalf("CanonicalElect tests = %d, Schedule reported %d", tests, res.Stats.Tests)
	}
	if !reflect.DeepEqual(cache.LiveNodes(), res.Kept) {
		t.Fatal("CanonicalElect live set differs from Schedule kept set")
	}
}

// TestCanonicalPriorityTotalOrder: priorities pair with IDs into a total
// order — distinct nodes never compare equal under (priority, ID), and the
// function is stable across calls.
func TestCanonicalPriorityTotalOrder(t *testing.T) {
	seen := make(map[uint64]graph.NodeID)
	for v := graph.NodeID(0); v < 4096; v++ {
		p := CanonicalPriority(7, v)
		if p != CanonicalPriority(7, v) {
			t.Fatalf("priority of %d unstable", v)
		}
		if prev, dup := seen[p]; dup {
			// Equal priorities are tolerated (the ID breaks the tie) but at
			// 4096 draws from a 64-bit space any collision means the
			// derivation is degenerate.
			t.Fatalf("priority collision between nodes %d and %d", prev, v)
		}
		seen[p] = v
	}
}

// TestElectionQueueContract: the exported queue's dedup/stale-skip
// semantics, which the shard coordinator's replay validation builds on —
// Pop and Peek agree, skip stale entries, and Push while pending is a
// no-op so a node is tested at most once per dirtying.
func TestElectionQueueContract(t *testing.T) {
	nodes := []graph.NodeID{0, 1, 2, 3, 4}
	eq := NewElectionQueue(3, nodes)
	if eq.Len() != len(nodes) {
		t.Fatalf("Len = %d, want %d", eq.Len(), len(nodes))
	}

	// Peek must agree with the next Pop without consuming it.
	prio, pv, ok := eq.Peek()
	if !ok || prio != CanonicalPriority(3, pv) {
		t.Fatalf("Peek = (%d, %d, %v), want the canonical head", prio, pv, ok)
	}
	v, ok := eq.Pop()
	if !ok || v != pv {
		t.Fatalf("Pop = (%d, %v) after Peek returned node %d", v, ok, pv)
	}

	// Re-pushing the popped node re-enqueues at its canonical priority;
	// pushing it again while pending must be a no-op (no duplicate test).
	eq.Push(v)
	eq.Push(v)
	order := []graph.NodeID{v}
	seen := map[graph.NodeID]int{v: 1}
	for {
		w, ok := eq.Pop()
		if !ok {
			break
		}
		order = append(order, w)
		seen[w]++
	}
	if len(order) != len(nodes)+1 {
		t.Fatalf("popped %d nodes, want %d (the re-pushed head plus the rest)", len(order), len(nodes)+1)
	}
	if seen[v] != 2 {
		t.Fatalf("re-pushed node %d popped %d times, want exactly 2", v, seen[v])
	}
	if order[0] != v {
		t.Fatalf("re-pushed head popped as %d, want %d first (priority is a pure function of seed and ID)", order[0], v)
	}
	// order[0] and order[1] are both v (the re-pushed head), so strict
	// (priority, ID) ascent starts at the second pop.
	for i := 2; i < len(order); i++ {
		pi, pj := CanonicalPriority(3, order[i-1]), CanonicalPriority(3, order[i])
		if pi > pj || (pi == pj && order[i-1] >= order[i]) {
			t.Fatalf("pop order violates (priority, ID) at %d: %v", i, order)
		}
	}

	// Exhausted queue: both accessors must report ok = false.
	if _, ok := eq.Pop(); ok {
		t.Fatal("Pop on an exhausted queue returned ok")
	}
	if _, _, ok := eq.Peek(); ok {
		t.Fatal("Peek on an exhausted queue returned ok")
	}

	// Stale entries are invisible to Peek: push a node, pop it via a
	// fresh higher-priority path, and confirm Peek discards the stale
	// heap entry rather than returning it.
	eq2 := NewElectionQueue(3, []graph.NodeID{1, 2})
	first, _ := eq2.Pop()
	eq2.Push(first) // heap now holds a live entry for first and one other
	second, _ := eq2.Pop()
	if second != first {
		t.Fatalf("re-pushed head popped as %d, want %d", second, first)
	}
	// The other node's original entry is live; first has no pending flag,
	// so any duplicate entry for it is stale and must be skipped.
	if _, w, ok := eq2.Peek(); !ok || w == first {
		t.Fatalf("Peek = (%d, %v), want the remaining pending node", w, ok)
	}
}
