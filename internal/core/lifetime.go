package core

import (
	"fmt"
	"math/rand"
	"sort"

	"dcc/internal/graph"
	"dcc/internal/runner"
	"dcc/internal/vpt"
)

// streamBiasedShuffle is the DeriveSeed stream of the duty-biased
// scheduler's tie-breaking shuffle (one derivation per rotation epoch; the
// epoch number rides in the run slot). The value spells "bias" in ASCII and
// stays far away from the experiment stream table in
// internal/experiments/streams.go.
const streamBiasedShuffle uint64 = 0x62696173

// ThinEdges applies the edge-deletion operator of the void-preserving
// transformation (Definition 5 covers both vertices and edges): it removes
// edges whose deletion keeps the neighbourhood graph connected and its
// irreducible cycles bounded by τ. Scheduling itself works at vertex
// granularity (a node is on or off), but edge thinning is useful after
// vertex scheduling to reduce the links that must be maintained — e.g. to
// cut idle-listening schedules or interference — without affecting the
// coverage guarantee.
//
// Boundary-to-boundary edges are preserved (they may carry the boundary
// cycles). The reduced graph is returned together with the removed edges.
func ThinEdges(net Network, g *graph.Graph, tau int, seed int64) (*graph.Graph, []graph.Edge, error) {
	if tau < 3 {
		return nil, nil, fmt.Errorf("core: tau %d: %w", tau, ErrTauTooSmall)
	}
	rng := rand.New(rand.NewSource(seed))
	cur := g
	var removed []graph.Edge
	for {
		edges := cur.Edges()
		rng.Shuffle(len(edges), func(i, j int) { edges[i], edges[j] = edges[j], edges[i] })
		progressed := false
		for _, e := range edges {
			if net.Boundary[e.U] && net.Boundary[e.V] {
				continue
			}
			if !cur.HasEdge(e.U, e.V) {
				continue
			}
			if vpt.EdgeDeletable(cur, e.U, e.V, tau) {
				cur = cur.DeleteEdges([]graph.Edge{e})
				removed = append(removed, e)
				progressed = true
			}
		}
		if !progressed {
			return cur, removed, nil
		}
	}
}

// RotationResult describes one sleep-rotation epoch.
type RotationResult struct {
	// Epoch numbers start at 1.
	Epoch int
	// Active is the coverage set on duty during the epoch.
	Active []graph.NodeID
	// Result is the full scheduling outcome for the epoch.
	Result Result
}

// Rotate computes successive coverage sets for sleep rotation, the
// energy-efficiency application motivating partial coverage in the paper
// (§III-B): in each epoch a sparse τ-confine coverage set stays awake
// while the rest sleep; across epochs duty is shifted to the nodes that
// have worked the least so far, extending network lifetime.
//
// Rotation biases the deletion order — nodes with higher accumulated duty
// are offered for deletion first — so the scheduler (which deletes
// greedily) preferentially retires tired nodes while the coverage
// guarantee of every epoch is identical to a fresh Schedule run.
func Rotate(net Network, opts Options, epochs int) ([]RotationResult, error) {
	if err := net.Validate(); err != nil {
		return nil, err
	}
	if epochs <= 0 {
		return nil, fmt.Errorf("core: epochs %d <= 0", epochs)
	}
	duty := make(map[graph.NodeID]int, net.G.NumNodes())
	var out []RotationResult
	for epoch := 1; epoch <= epochs; epoch++ {
		res, err := scheduleBiased(net, opts, duty, int64(epoch))
		if err != nil {
			return nil, err
		}
		for _, v := range res.KeptInternal {
			duty[v]++
		}
		out = append(out, RotationResult{
			Epoch:  epoch,
			Active: append([]graph.NodeID(nil), res.Kept...),
			Result: res,
		})
	}
	return out, nil
}

// scheduleBiased is the sequential engine with a duty-aware deletion order:
// high-duty nodes are tested (and thus deleted) first, ties broken by a
// seeded shuffle.
func scheduleBiased(net Network, opts Options, duty map[graph.NodeID]int, salt int64) (Result, error) {
	if opts.Tau < 3 {
		return Result{}, fmt.Errorf("core: tau %d: %w", opts.Tau, ErrTauTooSmall)
	}
	rng := rand.New(rand.NewSource(runner.DeriveSeed(opts.Seed, streamBiasedShuffle, int(salt))))
	cache := vpt.NewCache(net.G, opts.Tau)

	queue := net.InternalNodes()
	rng.Shuffle(len(queue), func(i, j int) { queue[i], queue[j] = queue[j], queue[i] })
	sort.SliceStable(queue, func(i, j int) bool {
		return duty[queue[i]] > duty[queue[j]]
	})
	inQueue := make(map[graph.NodeID]bool, len(queue))
	for _, v := range queue {
		inQueue[v] = true
	}

	var deleted []graph.NodeID
	stats := Stats{Rounds: 1}
	for len(queue) > 0 {
		v := queue[0]
		queue = queue[1:]
		inQueue[v] = false
		if !cache.Alive(v) {
			continue
		}
		stats.Tests++
		if !cache.Deletable(v) {
			continue
		}
		deleted = append(deleted, v)
		for _, w := range cache.Commit([]graph.NodeID{v}) {
			if !net.Boundary[w] && !inQueue[w] {
				inQueue[w] = true
				queue = append(queue, w)
			}
		}
	}
	return finishResult(net, cache.LiveGraph(), deleted, stats), nil
}
