package core

import (
	"errors"
	"math/rand"
	"testing"

	"dcc/internal/cycles"
	"dcc/internal/geom"
	"dcc/internal/graph"
	"dcc/internal/vpt"
)

// gridNet builds a core.Network from a (triangulated) grid with its
// perimeter as boundary cycle.
func gridNet(g *graph.Graph, rows, cols int) Network {
	var order []graph.NodeID
	for c := 0; c < cols; c++ {
		order = append(order, graph.NodeID(c))
	}
	for r := 1; r < rows; r++ {
		order = append(order, graph.NodeID(r*cols+cols-1))
	}
	for c := cols - 2; c >= 0; c-- {
		order = append(order, graph.NodeID((rows-1)*cols+c))
	}
	for r := rows - 2; r >= 1; r-- {
		order = append(order, graph.NodeID(r*cols))
	}
	b := make(map[graph.NodeID]bool, len(order))
	for _, v := range order {
		b[v] = true
	}
	return Network{G: g, Boundary: b, BoundaryCycles: [][]graph.NodeID{order}}
}

// denseNet builds a dense, heavily redundant network: a perturbed grid
// deployment with a UDG radius large enough that nodes see many neighbours.
// The outer boundary is the grid perimeter ring (the ring spacing is well
// under the radius, so consecutive ring nodes are connected).
func denseNet(t *testing.T, seed int64, rows, cols int, radius float64) Network {
	t.Helper()
	rng := rand.New(rand.NewSource(seed))
	rect := geom.Rect{MaxX: float64(cols), MaxY: float64(rows)}
	pts := geom.PerturbedGrid(rng, rows, cols, rect, 0.15)
	g := geom.UDG(pts, radius)
	if !g.IsConnected() {
		t.Fatal("dense test network disconnected; adjust parameters")
	}
	net := gridNet(g, rows, cols)
	if err := net.Validate(); err != nil {
		t.Fatalf("dense net invalid: %v", err)
	}
	return net
}

func TestValidate(t *testing.T) {
	g := graph.TriangulatedGrid(3, 3)
	net := gridNet(g, 3, 3)
	if err := net.Validate(); err != nil {
		t.Fatal(err)
	}
	// Missing boundary mark.
	bad := net
	bad.Boundary = map[graph.NodeID]bool{}
	if err := bad.Validate(); err == nil {
		t.Fatal("unmarked boundary nodes accepted")
	}
	// Broken cycle.
	bad2 := net
	bad2.BoundaryCycles = [][]graph.NodeID{{0, 1, 8}}
	if err := bad2.Validate(); err == nil {
		t.Fatal("broken boundary cycle accepted")
	}
	// No cycles.
	bad3 := net
	bad3.BoundaryCycles = nil
	if err := bad3.Validate(); err == nil {
		t.Fatal("missing boundary cycles accepted")
	}
	if err := (Network{}).Validate(); err == nil {
		t.Fatal("nil graph accepted")
	}
}

func TestVerifyConfineTriangulatedGrid(t *testing.T) {
	g := graph.TriangulatedGrid(4, 4)
	net := gridNet(g, 4, 4)
	ok, err := VerifyConfine(net.G, net.BoundaryCycles, 3)
	if err != nil {
		t.Fatal(err)
	}
	if !ok {
		t.Fatal("triangulated grid perimeter not 3-partitionable")
	}
	// Plain grid: 4 but not 3.
	g2 := graph.Grid(4, 4)
	net2 := gridNet(g2, 4, 4)
	if ok, _ := VerifyConfine(net2.G, net2.BoundaryCycles, 3); ok {
		t.Fatal("plain grid perimeter reported 3-partitionable")
	}
	if ok, _ := VerifyConfine(net2.G, net2.BoundaryCycles, 4); !ok {
		t.Fatal("plain grid perimeter not 4-partitionable")
	}
}

func TestScheduleRejectsBadOptions(t *testing.T) {
	net := gridNet(graph.TriangulatedGrid(3, 3), 3, 3)
	if _, err := Schedule(net, Options{Tau: 2}); err == nil {
		t.Fatal("tau=2 accepted")
	}
	if _, err := Schedule(net, Options{Tau: 3, Mode: Mode(99)}); err == nil {
		t.Fatal("unknown mode accepted")
	}
}

func TestScheduleNonRedundantInputUnchanged(t *testing.T) {
	// A minimally triangulated grid is already non-redundant for τ=3:
	// nothing can be deleted.
	g := graph.TriangulatedGrid(5, 5)
	net := gridNet(g, 5, 5)
	res, err := Schedule(net, Options{Tau: 3, Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Deleted) != 0 {
		t.Fatalf("deleted %d nodes from a non-redundant network", len(res.Deleted))
	}
	if res.Final.NumNodes() != g.NumNodes() {
		t.Fatal("final graph node count changed")
	}
}

func TestScheduleSequentialPreservesCriterion(t *testing.T) {
	for _, tau := range []int{3, 4, 5, 6} {
		net := denseNet(t, 42, 8, 8, 1.9)
		pre, err := VerifyConfine(net.G, net.BoundaryCycles, tau)
		if err != nil {
			t.Fatal(err)
		}
		if !pre {
			t.Fatalf("τ=%d: initial network does not satisfy the criterion", tau)
		}
		res, err := Schedule(net, Options{Tau: tau, Seed: 7})
		if err != nil {
			t.Fatal(err)
		}
		post, err := VerifyConfine(res.Final, net.BoundaryCycles, tau)
		if err != nil {
			t.Fatal(err)
		}
		if !post {
			t.Fatalf("τ=%d: criterion broken after scheduling", tau)
		}
		if res.Stats.Tests == 0 {
			t.Fatal("no deletability tests recorded")
		}
		// Dense network must allow some savings.
		if tau >= 4 && len(res.Deleted) == 0 {
			t.Fatalf("τ=%d: no deletions on a dense network", tau)
		}
	}
}

func TestScheduleParallelPreservesCriterion(t *testing.T) {
	net := denseNet(t, 43, 8, 8, 1.9)
	for _, tau := range []int{3, 5} {
		res, err := Schedule(net, Options{Tau: tau, Seed: 9, Mode: Parallel})
		if err != nil {
			t.Fatal(err)
		}
		ok, err := VerifyConfine(res.Final, net.BoundaryCycles, tau)
		if err != nil {
			t.Fatal(err)
		}
		if !ok {
			t.Fatalf("τ=%d: parallel scheduling broke the criterion", tau)
		}
	}
}

func TestParallelMatchesSequentialLocally(t *testing.T) {
	// Both engines must terminate in a locally-maximal state: no remaining
	// internal node is deletable.
	net := denseNet(t, 44, 7, 7, 1.9)
	tau := 4
	for _, mode := range []Mode{Sequential, Parallel} {
		res, err := Schedule(net, Options{Tau: tau, Seed: 11, Mode: mode})
		if err != nil {
			t.Fatal(err)
		}
		for _, v := range res.KeptInternal {
			if vpt.VertexDeletable(res.Final, v, tau) {
				t.Fatalf("mode %d: node %d still deletable after termination", mode, v)
			}
		}
	}
}

func TestLargerTauDeletesMore(t *testing.T) {
	// The headline effect of Figure 3: larger confine sizes admit sparser
	// coverage sets.
	net := denseNet(t, 45, 9, 9, 1.9)
	sizes := make([]int, 0, 3)
	for _, tau := range []int{3, 4, 6} {
		res, err := Schedule(net, Options{Tau: tau, Seed: 3})
		if err != nil {
			t.Fatal(err)
		}
		sizes = append(sizes, len(res.KeptInternal))
	}
	if !(sizes[0] >= sizes[1] && sizes[1] >= sizes[2]) {
		t.Fatalf("coverage-set sizes not non-increasing in τ: %v", sizes)
	}
	if sizes[2] >= sizes[0] && sizes[0] != 0 {
		t.Fatalf("τ=6 saved nothing over τ=3: %v", sizes)
	}
}

func TestScheduleNonRedundancy(t *testing.T) {
	// Theorem 6: when the original irreducible cycles are bounded by τ,
	// the output is non-redundant — removing any kept internal node breaks
	// the criterion.
	net := denseNet(t, 46, 6, 6, 1.9)
	_, maxVoid, err := vpt.VoidSizes(net.G)
	if err != nil {
		t.Fatal(err)
	}
	tau := maxVoid
	if tau < 3 {
		tau = 3
	}
	res, err := Schedule(net, Options{Tau: tau, Seed: 5})
	if err != nil {
		t.Fatal(err)
	}
	ok, v, err := VerifyNonRedundant(net, res.Final, tau)
	if err != nil {
		t.Fatal(err)
	}
	if !ok {
		t.Fatalf("coverage set redundant: node %d removable", v)
	}
}

func TestRepairBoundaries(t *testing.T) {
	// Annulus-style network: outer perimeter + inner square hole boundary.
	g := graph.TriangulatedGrid(6, 6)
	// Carve an inner hole: delete the central 2×2 block's diagonals by
	// removing node 14,15,20,21 edges? Simpler: declare the inner cycle
	// around node 14 after deleting it.
	inner := []graph.NodeID{7, 8, 15, 21, 20, 13} // hexagon around 14
	g = g.DeleteVertices([]graph.NodeID{14})
	net := gridNet(g, 6, 6)
	net.BoundaryCycles = append(net.BoundaryCycles, inner)
	for _, v := range inner {
		net.Boundary[v] = true
	}
	if err := net.Validate(); err != nil {
		t.Fatal(err)
	}

	repaired, virtual, err := RepairBoundaries(net)
	if err != nil {
		t.Fatal(err)
	}
	if len(virtual) != 1 {
		t.Fatalf("virtual nodes = %v, want 1", virtual)
	}
	apex := virtual[0]
	if !repaired.Boundary[apex] {
		t.Fatal("apex not marked boundary")
	}
	if repaired.G.Degree(apex) != len(inner) {
		t.Fatalf("apex degree %d, want %d", repaired.G.Degree(apex), len(inner))
	}
	// Without repair, the hexagonal inner hole keeps the plain criterion
	// happy only with the inner boundary declared; with the cone, even the
	// 3-criterion sees the inner region as filled. Verify the repaired
	// network satisfies the τ=6 criterion.
	ok, err := VerifyConfine(repaired.G, repaired.BoundaryCycles, 6)
	if err != nil {
		t.Fatal(err)
	}
	if !ok {
		t.Fatal("repaired annulus fails the τ=6 criterion")
	}
	// Single-boundary networks pass through unchanged.
	single := gridNet(graph.TriangulatedGrid(3, 3), 3, 3)
	same, virt2, err := RepairBoundaries(single)
	if err != nil {
		t.Fatal(err)
	}
	if len(virt2) != 0 || same.G != single.G {
		t.Fatal("single-boundary network was modified")
	}
}

func TestBoundaryTargetMultipleCycles(t *testing.T) {
	// Sum of outer and inner boundary of the carved grid.
	g := graph.TriangulatedGrid(6, 6).DeleteVertices([]graph.NodeID{14})
	net := gridNet(g, 6, 6)
	inner := []graph.NodeID{7, 8, 15, 21, 20, 13}
	net.BoundaryCycles = append(net.BoundaryCycles, inner)
	target, err := BoundaryTarget(g, net.BoundaryCycles)
	if err != nil {
		t.Fatal(err)
	}
	wantWeight := len(net.BoundaryCycles[0]) + len(inner)
	if target.PopCount() != wantWeight {
		t.Fatalf("target weight %d, want %d (disjoint cycles)", target.PopCount(), wantWeight)
	}
	// The annulus between the boundaries is triangulated: τ=3 should
	// partition outer ⊕ inner... the hexagon ring around the removed node
	// leaves 6-cycles? Verify via the generic machinery for τ=6.
	if !cycles.Partitionable(g, target, 6) {
		t.Fatal("annulus target not 6-partitionable")
	}
}

func TestAchievableTau(t *testing.T) {
	tests := []struct {
		name string
		net  Network
		max  int
		want int
		err  bool
	}{
		{"triangulated grid", gridNet(graph.TriangulatedGrid(4, 4), 4, 4), 8, 3, false},
		{"plain grid", gridNet(graph.Grid(4, 4), 4, 4), 8, 4, false},
		{"plain grid capped", gridNet(graph.Grid(4, 4), 4, 4), 3, 0, true},
	}
	for _, tt := range tests {
		t.Run(tt.name, func(t *testing.T) {
			got, err := AchievableTau(tt.net, tt.max)
			if tt.err {
				if !errors.Is(err, ErrNotAchievable) {
					t.Fatalf("err = %v, want ErrNotAchievable", err)
				}
				return
			}
			if err != nil {
				t.Fatal(err)
			}
			if got != tt.want {
				t.Fatalf("AchievableTau = %d, want %d", got, tt.want)
			}
		})
	}
	if _, err := AchievableTau(Network{}, 5); err == nil {
		t.Fatal("invalid network accepted")
	}
}

func TestPlanTau(t *testing.T) {
	sqrt3 := 1.7320508
	tests := []struct {
		name    string
		req     Requirement
		want    int
		wantErr error
	}{
		{"blanket γ=√3", Requirement{Gamma: sqrt3}, 3, nil},
		{"blanket γ=√2", Requirement{Gamma: 1.41421}, 4, nil},
		{"blanket γ=1", Requirement{Gamma: 1.0}, 6, nil},
		{"blanket γ=2 infeasible", Requirement{Gamma: 2.0}, 0, ErrNoFeasibleTau},
		{"partial γ=2 Dmax=1.2Rc", Requirement{Gamma: 2.0, MaxHoleDiameter: 1.2}, 3, nil},
		{"partial γ=2 Dmax=4Rc", Requirement{Gamma: 2.0, MaxHoleDiameter: 4}, 6, nil},
		{"partial beats blanket", Requirement{Gamma: 1.0, MaxHoleDiameter: 7}, 9, nil},
		{"blanket beats partial", Requirement{Gamma: 1.0, MaxHoleDiameter: 0.5}, 6, nil},
		{"gamma zero", Requirement{Gamma: 0}, 0, errors.New("any")},
	}
	for _, tt := range tests {
		t.Run(tt.name, func(t *testing.T) {
			got, err := PlanTau(tt.req)
			if tt.wantErr != nil {
				if err == nil {
					t.Fatalf("want error, got τ=%d", got)
				}
				if errors.Is(tt.wantErr, ErrNoFeasibleTau) && !errors.Is(err, ErrNoFeasibleTau) {
					t.Fatalf("err = %v, want ErrNoFeasibleTau", err)
				}
				return
			}
			if err != nil {
				t.Fatal(err)
			}
			if got != tt.want {
				t.Fatalf("PlanTau = %d, want %d", got, tt.want)
			}
		})
	}
}

func BenchmarkScheduleSequentialTau4(b *testing.B) {
	rng := rand.New(rand.NewSource(50))
	rect := geom.Rect{MaxX: 10, MaxY: 10}
	pts := geom.PerturbedGrid(rng, 10, 10, rect, 0.15)
	g := geom.UDG(pts, 1.9)
	net := gridNet(g, 10, 10)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := Schedule(net, Options{Tau: 4, Seed: int64(i)}); err != nil {
			b.Fatal(err)
		}
	}
}
