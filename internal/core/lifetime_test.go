package core

import (
	"math/rand"
	"testing"

	"dcc/internal/geom"
	"dcc/internal/graph"
	"dcc/internal/vpt"
)

func TestThinEdgesPreservesCriterion(t *testing.T) {
	net := denseNet(t, 90, 7, 7, 1.9)
	tau := 4
	res, err := Schedule(net, Options{Tau: tau, Seed: 2})
	if err != nil {
		t.Fatal(err)
	}
	thinned, removed, err := ThinEdges(net, res.Final, tau, 2)
	if err != nil {
		t.Fatal(err)
	}
	if len(removed) == 0 {
		t.Skip("no removable edges on this instance")
	}
	if thinned.NumEdges()+len(removed) != res.Final.NumEdges() {
		t.Fatal("edge accounting wrong")
	}
	ok, err := VerifyConfine(thinned, net.BoundaryCycles, tau)
	if err != nil {
		t.Fatal(err)
	}
	if !ok {
		t.Fatal("edge thinning broke the criterion")
	}
	// Boundary edges must survive.
	cyc := net.BoundaryCycles[0]
	for i := range cyc {
		if !thinned.HasEdge(cyc[i], cyc[(i+1)%len(cyc)]) {
			t.Fatal("boundary cycle edge removed")
		}
	}
	// No node may be dropped by edge thinning.
	if thinned.NumNodes() != res.Final.NumNodes() {
		t.Fatal("edge thinning dropped nodes")
	}
}

func TestThinEdgesRejectsBadTau(t *testing.T) {
	net := gridNet(graph.TriangulatedGrid(3, 3), 3, 3)
	if _, _, err := ThinEdges(net, net.G, 2, 1); err == nil {
		t.Fatal("tau=2 accepted")
	}
}

func TestRotateCoverageEveryEpoch(t *testing.T) {
	net := denseNet(t, 91, 7, 7, 1.9)
	tau := 4
	epochs, err := Rotate(net, Options{Tau: tau, Seed: 3}, 4)
	if err != nil {
		t.Fatal(err)
	}
	if len(epochs) != 4 {
		t.Fatalf("got %d epochs, want 4", len(epochs))
	}
	for _, ep := range epochs {
		ok, err := VerifyConfine(ep.Result.Final, net.BoundaryCycles, tau)
		if err != nil {
			t.Fatal(err)
		}
		if !ok {
			t.Fatalf("epoch %d violates the criterion", ep.Epoch)
		}
	}
}

func TestRotateSpreadsDuty(t *testing.T) {
	// With rotation, duty should be spread over more distinct nodes than a
	// single epoch uses.
	net := denseNet(t, 92, 8, 8, 1.9)
	tau := 5
	epochs, err := Rotate(net, Options{Tau: tau, Seed: 4}, 5)
	if err != nil {
		t.Fatal(err)
	}
	everActive := make(map[graph.NodeID]bool)
	perEpoch := 0
	for _, ep := range epochs {
		n := 0
		for _, v := range ep.Result.KeptInternal {
			everActive[v] = true
			n++
		}
		if perEpoch == 0 {
			perEpoch = n
		}
	}
	if perEpoch == 0 {
		t.Skip("degenerate: empty coverage sets")
	}
	if len(everActive) <= perEpoch {
		t.Fatalf("rotation reused the same %d nodes every epoch", perEpoch)
	}
}

func TestRotateRejectsBadInput(t *testing.T) {
	net := gridNet(graph.TriangulatedGrid(3, 3), 3, 3)
	if _, err := Rotate(net, Options{Tau: 4, Seed: 1}, 0); err == nil {
		t.Fatal("0 epochs accepted")
	}
	if _, err := Rotate(Network{}, Options{Tau: 4}, 1); err == nil {
		t.Fatal("invalid network accepted")
	}
	if _, err := Rotate(net, Options{Tau: 2}, 1); err == nil {
		t.Fatal("tau=2 accepted")
	}
}

// TestThinEdgesThenLocalMaximality: after thinning, no further edge is
// deletable.
func TestThinEdgesLocallyMaximal(t *testing.T) {
	rng := rand.New(rand.NewSource(93))
	rect := geom.Rect{MaxX: 6, MaxY: 6}
	pts := geom.PerturbedGrid(rng, 6, 6, rect, 0.15)
	g := geom.UDG(pts, 1.9)
	net := gridNet(g, 6, 6)
	tau := 4
	thinned, _, err := ThinEdges(net, g, tau, 7)
	if err != nil {
		t.Fatal(err)
	}
	for _, e := range thinned.Edges() {
		if net.Boundary[e.U] && net.Boundary[e.V] {
			continue
		}
		if vpt.EdgeDeletable(thinned, e.U, e.V, tau) {
			t.Fatalf("edge %v still deletable after thinning", e)
		}
	}
}
