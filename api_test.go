package dcc

import (
	"errors"
	"io/fs"
	"os"
	"path/filepath"
	"reflect"
	"regexp"
	"strings"
	"testing"

	"dcc/internal/runner"
)

// smallDeployment builds a small deployment for API-surface tests.
func smallDeployment(t *testing.T, seed int64) *Deployment {
	t.Helper()
	dep, err := Deploy(DeployOptions{Nodes: 60, Seed: seed})
	if err != nil {
		t.Fatal(err)
	}
	return dep
}

// TestSentinelErrorsWrapped: every public scheduling entry point must
// return an error matching the documented sentinel via errors.Is — wrapped,
// not a bare fmt.Errorf string.
func TestSentinelErrorsWrapped(t *testing.T) {
	dep := smallDeployment(t, 1)

	if _, err := dep.ScheduleDCC(2, ScheduleOptions{}); !errors.Is(err, ErrTauTooSmall) {
		t.Fatalf("ScheduleDCC(2) err = %v, want errors.Is ErrTauTooSmall", err)
	}
	if _, err := dep.ScheduleDCC(2, ScheduleOptions{Parallel: true}); !errors.Is(err, ErrTauTooSmall) {
		t.Fatalf("parallel ScheduleDCC(2) err = %v, want errors.Is ErrTauTooSmall", err)
	}
	if _, err := dep.ScheduleDCCDistributed(DistConfig{Tau: 2}); !errors.Is(err, ErrTauTooSmall) {
		t.Fatalf("ScheduleDCCDistributed(tau=2) err = %v, want errors.Is ErrTauTooSmall", err)
	}
	if _, _, err := dep.ThinEdges(dep.G, 2, 1); !errors.Is(err, ErrTauTooSmall) {
		t.Fatalf("ThinEdges(tau=2) err = %v, want errors.Is ErrTauTooSmall", err)
	}
	if _, err := dep.Rotate(2, 2, 1); !errors.Is(err, ErrTauTooSmall) {
		t.Fatalf("Rotate(tau=2) err = %v, want errors.Is ErrTauTooSmall", err)
	}
	if _, err := dep.ScheduleDCCSharded(2, ShardOptions{}); !errors.Is(err, ErrTauTooSmall) {
		t.Fatalf("ScheduleDCCSharded(2) err = %v, want errors.Is ErrTauTooSmall", err)
	}
	obs, err := Deploy(DeployOptions{Nodes: 100, Seed: 3, Obstacles: []Circle{{Center: Point{X: 1.8, Y: 1.8}, R: 0.5}}})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := obs.ScheduleDCCSharded(4, ShardOptions{}); !errors.Is(err, ErrShardedUnsupported) {
		t.Fatalf("obstacle ScheduleDCCSharded err = %v, want errors.Is ErrShardedUnsupported", err)
	}
	if _, err := PlanTau(Requirement{Gamma: 2.5}); !errors.Is(err, ErrNoFeasibleTau) {
		t.Fatalf("PlanTau(gamma=2.5) err = %v, want errors.Is ErrNoFeasibleTau", err)
	}
	if _, err := dep.AchievableTau(2); !errors.Is(err, ErrNotAchievable) {
		t.Fatalf("AchievableTau(2) err = %v, want errors.Is ErrNotAchievable", err)
	}
}

// TestDeriveSeedMirrorsRunner: the public DeriveSeed must be the same
// derivation the internal experiment harness uses.
func TestDeriveSeedMirrorsRunner(t *testing.T) {
	for base := int64(-2); base <= 2; base++ {
		for stream := uint64(0); stream < 4; stream++ {
			for run := 0; run < 4; run++ {
				if got, want := DeriveSeed(base, stream, run), runner.DeriveSeed(base, stream, run); got != want {
					t.Fatalf("DeriveSeed(%d,%d,%d) = %d, want %d", base, stream, run, got, want)
				}
			}
		}
	}
}

// TestSeedDeterminism: each documented Seed field fully determines its
// stage — equal seeds give byte-identical outputs, distinct derived seeds
// give (on this instance) different ones.
func TestSeedDeterminism(t *testing.T) {
	base := int64(42)
	depSeed := DeriveSeed(base, 0, 0)
	schedSeed := DeriveSeed(base, 1, 0)

	depA := smallDeployment(t, depSeed)
	depB := smallDeployment(t, depSeed)
	if !reflect.DeepEqual(depA.Points, depB.Points) || !reflect.DeepEqual(depA.G, depB.G) {
		t.Fatal("Deploy is not deterministic in DeployOptions.Seed")
	}

	resA, err := depA.ScheduleDCC(4, ScheduleOptions{Seed: schedSeed})
	if err != nil {
		t.Fatal(err)
	}
	resB, err := depB.ScheduleDCC(4, ScheduleOptions{Seed: schedSeed})
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(resA, resB) {
		t.Fatal("ScheduleDCC is not deterministic in ScheduleOptions.Seed")
	}

	// Parallel mode must be worker-count invariant for a fixed seed.
	for _, workers := range []int{1, 3} {
		res, err := depA.ScheduleDCC(4, ScheduleOptions{Seed: schedSeed, Parallel: true, Workers: workers})
		if err != nil {
			t.Fatal(err)
		}
		ref, err := depB.ScheduleDCC(4, ScheduleOptions{Seed: schedSeed, Parallel: true, Workers: 1})
		if err != nil {
			t.Fatal(err)
		}
		if !reflect.DeepEqual(res, ref) {
			t.Fatalf("parallel ScheduleDCC differs at Workers=%d", workers)
		}
	}

	distA, err := depA.ScheduleDCCDistributed(DistConfig{Tau: 4, Seed: schedSeed})
	if err != nil {
		t.Fatal(err)
	}
	distB, err := depB.ScheduleDCCDistributed(DistConfig{Tau: 4, Seed: schedSeed})
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(distA, distB) {
		t.Fatal("ScheduleDCCDistributed is not deterministic in DistConfig.Seed")
	}
}

// TestStatsAliases: the deprecated result-surface names must stay in sync
// with their canonical replacements for the deprecation window.
func TestStatsAliases(t *testing.T) {
	dep := smallDeployment(t, 7)
	res, err := dep.ScheduleDCC(4, ScheduleOptions{Seed: 7})
	if err != nil {
		t.Fatal(err)
	}
	if res.Stats.Deleted != res.Stats.Deletions {
		t.Fatalf("core Stats.Deleted = %d, want alias of Deletions = %d", res.Stats.Deleted, res.Stats.Deletions)
	}
	if res.Stats.Deletions != len(res.Deleted) {
		t.Fatalf("Stats.Deletions = %d, want %d", res.Stats.Deletions, len(res.Deleted))
	}

	dres, err := dep.ScheduleDCCDistributed(DistConfig{Tau: 4, Seed: 7})
	if err != nil {
		t.Fatal(err)
	}
	if dres.Stats.SuperRounds != dres.Stats.Rounds {
		t.Fatalf("dist Stats.SuperRounds = %d, want alias of Rounds = %d", dres.Stats.SuperRounds, dres.Stats.Rounds)
	}
	if dres.Stats.Deletions != len(dres.Deleted) {
		t.Fatalf("dist Stats.Deletions = %d, want %d", dres.Stats.Deletions, len(dres.Deleted))
	}
}

// TestDeprecatedAliasAudit: the deprecated stats aliases (core.Stats.Deleted,
// dist.Stats.SuperRounds) are kept in sync for one final release for external
// readers only. No Go source in this module may use them through a selector
// except the declared sync writers and the alias tests above. This scan fails
// the build on any new internal use, so the aliases can be deleted next
// release by removing two struct fields and this allowlist.
func TestDeprecatedAliasAudit(t *testing.T) {
	// Selector uses of the deprecated names. `\.SuperRounds` deliberately
	// does not match the non-deprecated config bound MaxSuperRounds, and
	// the Deleted pattern is anchored on a *Stats* receiver so the
	// []NodeID result field Result.Deleted stays legal.
	patterns := []*regexp.Regexp{
		regexp.MustCompile(`\.SuperRounds\b`),
		regexp.MustCompile(`[sS]tats\.Deleted\b`),
	}
	allowed := map[string]bool{
		"api_test.go":           true, // the alias-sync assertions above
		"internal/core/core.go": true, // finishResult alias sync writer
		"internal/dist/dist.go": true, // result() alias sync writer + field decl
	}
	err := filepath.WalkDir(".", func(path string, d fs.DirEntry, err error) error {
		if err != nil {
			return err
		}
		if d.IsDir() {
			if d.Name() == ".git" {
				return filepath.SkipDir
			}
			return nil
		}
		if !strings.HasSuffix(path, ".go") || allowed[filepath.ToSlash(path)] {
			return nil
		}
		data, err := os.ReadFile(path)
		if err != nil {
			return err
		}
		for i, line := range strings.Split(string(data), "\n") {
			trimmed := strings.TrimSpace(line)
			if strings.HasPrefix(trimmed, "//") {
				continue
			}
			for _, re := range patterns {
				if re.MatchString(line) {
					t.Errorf("%s:%d: deprecated stats alias in use: %s", path, i+1, trimmed)
				}
			}
		}
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
}
