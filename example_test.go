package dcc_test

import (
	"fmt"
	"log"

	"dcc"
)

// ExamplePlanTau shows how the confine size is planned from a coverage
// requirement (Proposition 1).
func ExamplePlanTau() {
	// Blanket coverage with strong sensing (γ = 1): six-hop cycles
	// suffice.
	tau, err := dcc.PlanTau(dcc.Requirement{Gamma: 1.0})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("blanket, γ=1.0:", tau)

	// Weak sensing (γ = 2) with a hole-diameter budget of 3·Rc.
	tau, err = dcc.PlanTau(dcc.Requirement{Gamma: 2.0, MaxHoleDiameter: 3})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("partial, γ=2.0, Dmax=3Rc:", tau)

	// Blanket coverage at γ = 2 is impossible for any connectivity-based
	// method.
	_, err = dcc.PlanTau(dcc.Requirement{Gamma: 2.0})
	fmt.Println("blanket, γ=2.0:", err)

	// Output:
	// blanket, γ=1.0: 6
	// partial, γ=2.0, Dmax=3Rc: 5
	// blanket, γ=2.0: core: no feasible confine size for the requirement
}

// ExampleDeployment_ScheduleDCC is the minimal end-to-end flow: deploy,
// schedule with connectivity only, verify the criterion.
func ExampleDeployment_ScheduleDCC() {
	dep, err := dcc.Deploy(dcc.DeployOptions{Nodes: 120, Seed: 5, Gamma: 1.0})
	if err != nil {
		log.Fatal(err)
	}
	res, err := dep.ScheduleDCC(6, dcc.ScheduleOptions{Seed: 5})
	if err != nil {
		log.Fatal(err)
	}
	ok, err := dep.VerifyConfine(res.Final, 6)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("some nodes deleted:", len(res.Deleted) > 0)
	fmt.Println("criterion holds:", ok)
	// Output:
	// some nodes deleted: true
	// criterion holds: true
}
