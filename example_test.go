package dcc_test

import (
	"fmt"
	"log"

	"dcc"
	"dcc/internal/scenario"
)

// ExamplePlanTau shows how the confine size is planned from a coverage
// requirement (Proposition 1).
func ExamplePlanTau() {
	// Blanket coverage with strong sensing (γ = 1): six-hop cycles
	// suffice.
	tau, err := dcc.PlanTau(dcc.Requirement{Gamma: 1.0})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("blanket, γ=1.0:", tau)

	// Weak sensing (γ = 2) with a hole-diameter budget of 3·Rc.
	tau, err = dcc.PlanTau(dcc.Requirement{Gamma: 2.0, MaxHoleDiameter: 3})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("partial, γ=2.0, Dmax=3Rc:", tau)

	// Blanket coverage at γ = 2 is impossible for any connectivity-based
	// method.
	_, err = dcc.PlanTau(dcc.Requirement{Gamma: 2.0})
	fmt.Println("blanket, γ=2.0:", err)

	// Output:
	// blanket, γ=1.0: 6
	// partial, γ=2.0, Dmax=3Rc: 5
	// blanket, γ=2.0: core: no feasible confine size for the requirement
}

// ExampleDeployment_ScheduleDCC is the minimal end-to-end flow: deploy,
// schedule with connectivity only, verify the criterion.
func ExampleDeployment_ScheduleDCC() {
	dep, err := dcc.Deploy(dcc.DeployOptions{Nodes: 120, Seed: 5, Gamma: 1.0})
	if err != nil {
		log.Fatal(err)
	}
	res, err := dep.ScheduleDCC(6, dcc.ScheduleOptions{Seed: 5})
	if err != nil {
		log.Fatal(err)
	}
	ok, err := dep.VerifyConfine(res.Final, 6)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("some nodes deleted:", len(res.Deleted) > 0)
	fmt.Println("criterion holds:", ok)
	// Output:
	// some nodes deleted: true
	// criterion holds: true
}

// ExampleScenario shows the ground-truth catalogue (DESIGN.md §12): a
// generated lattice carries a closed-form oracle, and the pipeline is
// asserted against it instead of against its own history.
func ExampleScenario() {
	// A 6×6 unit square lattice with diagonal links (rc = 1.5·s) and
	// sensing radius 0.9 > s/√2 — the oracle knows it is 3-confinable and
	// blanket-covered before anything runs.
	sc, err := scenario.SquareLattice("example/square", 6, 6, 1.0, 1.5, 0.9)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("oracle τ:", sc.Oracle.AchievableTau)
	fmt.Println("oracle covered:", sc.Oracle.Covered)

	// The pipeline must agree on both counts.
	tau, err := sc.Dep.AchievableTau(8)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("measured τ:", tau)
	fmt.Println("measured covered:", sc.Coverage(nil).FullyCovered())
	// Output:
	// oracle τ: 3
	// oracle covered: true
	// measured τ: 3
	// measured covered: true
}
