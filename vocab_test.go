package dcc_test

import (
	"reflect"
	"testing"

	"dcc"

	"dcc/internal/core"
	"dcc/internal/dist"
	"dcc/internal/experiments"
	"dcc/internal/shard"
	"dcc/internal/stream"
	"dcc/internal/telemetry"
)

// TestConfigVocabulary: every configuration struct in the module — public
// options and internal engine configs alike — must spell the shared knobs
// with the same names and types (the vocabulary table in DESIGN.md §15):
//
//	Seed      int64                ← randomness / canonical priorities
//	Workers   int                  ← parallel-section concurrency bound
//	Telemetry *telemetry.Registry  ← optional metrics registry
//
// The test walks each struct with reflection so a renamed or retyped field
// fails here before it fails a reader. Synonyms (NumWorkers, RandSeed,
// Metrics, ...) are rejected outright; Workers is required only where the
// engine actually has parallel sections (the distributed simulator and the
// streaming engine are deliberately sequential).
func TestConfigVocabulary(t *testing.T) {
	type want struct {
		name    string
		typ     reflect.Type
		require bool
	}
	seed := want{"Seed", reflect.TypeOf(int64(0)), true}
	telem := want{"Telemetry", reflect.TypeOf((*telemetry.Registry)(nil)), true}
	workers := want{"Workers", reflect.TypeOf(int(0)), true}
	noWorkers := want{"Workers", reflect.TypeOf(int(0)), false}

	cases := []struct {
		label string
		cfg   interface{}
		wants []want
	}{
		{"core.Options", core.Options{}, []want{seed, workers, telem}},
		{"dist.Config", dist.Config{}, []want{seed, noWorkers, telem}},
		{"stream.Config", stream.Config{}, []want{seed, noWorkers, telem}},
		{"experiments.Config", experiments.Config{}, []want{seed, workers, telem}},
		{"shard.Options", shard.Options{}, []want{seed, workers, telem}},
		{"dcc.ScheduleOptions", dcc.ScheduleOptions{}, []want{seed, workers, telem}},
		{"dcc.ShardOptions", dcc.ShardOptions{}, []want{seed, workers, telem}},
	}
	// Field names that spell one of the shared concepts differently.
	// MaxSuperRounds et al. are engine-specific knobs, not synonyms.
	synonyms := []string{
		"RandSeed", "RandomSeed", "BaseSeed",
		"NumWorkers", "Concurrency", "Parallelism", "Threads",
		"Metrics", "Registry", "Telem",
	}
	for _, tc := range cases {
		st := reflect.TypeOf(tc.cfg)
		if st.Kind() != reflect.Struct {
			t.Fatalf("%s: not a struct", tc.label)
		}
		for _, w := range tc.wants {
			f, ok := st.FieldByName(w.name)
			if !ok {
				if w.require {
					t.Errorf("%s: missing required field %s %v", tc.label, w.name, w.typ)
				}
				continue
			}
			if !w.require {
				t.Errorf("%s: has field %s, but this engine is documented as sequential — drop it or update DESIGN.md §15", tc.label, w.name)
				continue
			}
			if f.Type != w.typ {
				t.Errorf("%s.%s has type %v, want %v", tc.label, w.name, f.Type, w.typ)
			}
		}
		for _, syn := range synonyms {
			if _, ok := st.FieldByName(syn); ok {
				t.Errorf("%s: field %s is a vocabulary synonym — use the shared name (DESIGN.md §15)", tc.label, syn)
			}
		}
	}
}
