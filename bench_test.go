package dcc_test

// One benchmark per table/figure of the paper's evaluation (§VI). Each
// drives the corresponding experiment runner end to end at a reduced scale
// (the full, paper-scale runs are available via cmd/dccsim -full). The
// regenerated series themselves are checked by the tests in
// internal/experiments; these benchmarks measure the cost of regeneration
// and keep every figure's pipeline exercised under -bench.
//
// This file is an external test package (dcc_test) because the experiment
// harness itself imports dcc.

import (
	"fmt"
	"io"
	"testing"

	"dcc"
	"dcc/internal/experiments"
)

// benchConfig is the reduced scale shared by the figure benchmarks.
func benchConfig() experiments.Config {
	return experiments.Config{Seed: 1, Runs: 1, Nodes: 150, MaxTau: 5, Quick: true}
}

// BenchmarkFig1Mobius regenerates Figure 1: the möbius-band network on
// which the cycle-partition criterion succeeds and homology fails.
func BenchmarkFig1Mobius(b *testing.B) {
	for i := 0; i < b.N; i++ {
		res, err := experiments.Figure1(io.Discard)
		if err != nil {
			b.Fatal(err)
		}
		if !res.DCCCovered || res.HGCCovered {
			b.Fatal("figure 1 verdicts wrong")
		}
	}
}

// BenchmarkFig2Deletion regenerates Figure 2: maximal-vertex-deletion
// snapshots for τ = 3..6 on one random network.
func BenchmarkFig2Deletion(b *testing.B) {
	cfg := benchConfig()
	for i := 0; i < b.N; i++ {
		if _, err := experiments.Figure2(io.Discard, cfg); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkFig3ConfineSize regenerates Figure 3: coverage-set size vs
// confine size, normalized by the τ=3 result.
func BenchmarkFig3ConfineSize(b *testing.B) {
	cfg := benchConfig()
	for i := 0; i < b.N; i++ {
		res, err := experiments.Figure3(io.Discard, cfg)
		if err != nil {
			b.Fatal(err)
		}
		if res.Ratio[len(res.Ratio)-1] >= 1 {
			b.Fatal("figure 3 shape wrong: no savings at max tau")
		}
	}
}

// BenchmarkFig3Workers measures the worker-pool scaling of Figure 3's
// Monte-Carlo loop: the same experiment fanned over 1, 2, and 4 workers.
// Output is byte-identical for every variant (see internal/experiments
// equivalence tests); only wall-clock should move, and only on multi-CPU
// machines.
func BenchmarkFig3Workers(b *testing.B) {
	for _, workers := range []int{1, 2, 4} {
		b.Run(fmt.Sprintf("w%d", workers), func(b *testing.B) {
			cfg := benchConfig()
			cfg.Runs = 4
			cfg.Workers = workers
			for i := 0; i < b.N; i++ {
				if _, err := experiments.Figure3(io.Discard, cfg); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// BenchmarkFig4SavedNodes regenerates Figure 4: nodes saved by DCC over
// the HGC baseline across sensing ratios and hole-diameter requirements.
func BenchmarkFig4SavedNodes(b *testing.B) {
	cfg := benchConfig()
	for i := 0; i < b.N; i++ {
		if _, err := experiments.Figure4(io.Discard, cfg); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkFig5TraceCDF regenerates Figure 5: the RSSI CDF of the
// synthetic GreenOrbs-like trace.
func BenchmarkFig5TraceCDF(b *testing.B) {
	cfg := benchConfig()
	for i := 0; i < b.N; i++ {
		if _, err := experiments.Figure5(io.Discard, cfg); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkFig6TraceConfine regenerates Figure 6: left internal nodes vs
// confine size on the trace topology.
func BenchmarkFig6TraceConfine(b *testing.B) {
	cfg := benchConfig()
	for i := 0; i < b.N; i++ {
		if _, err := experiments.Figure6(io.Discard, cfg); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkFig7TraceSnapshots regenerates Figure 7: DCC snapshots on the
// trace topology for τ = 3..7.
func BenchmarkFig7TraceSnapshots(b *testing.B) {
	cfg := benchConfig()
	for i := 0; i < b.N; i++ {
		if _, err := experiments.Figure7(io.Discard, cfg); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkAblationEngines compares the three scheduling engines
// (sequential, MIS-parallel, distributed) on identical networks.
func BenchmarkAblationEngines(b *testing.B) {
	cfg := benchConfig()
	for i := 0; i < b.N; i++ {
		if _, err := experiments.AblationEngines(io.Discard, cfg); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkAblationRotation measures sleep-rotation scheduling across
// epochs.
func BenchmarkAblationRotation(b *testing.B) {
	cfg := benchConfig()
	for i := 0; i < b.N; i++ {
		if _, err := experiments.AblationRotation(io.Discard, cfg); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkScheduleDCCEndToEnd measures the full library path a user hits:
// deploy → plan τ → schedule → verify.
func BenchmarkScheduleDCCEndToEnd(b *testing.B) {
	dep, err := dcc.Deploy(dcc.DeployOptions{Nodes: 150, Seed: 1, Gamma: 1.0})
	if err != nil {
		b.Fatal(err)
	}
	tau, err := dcc.PlanTau(dcc.Requirement{Gamma: dep.Gamma()})
	if err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		res, err := dep.ScheduleDCC(tau, dcc.ScheduleOptions{Seed: int64(i), Parallel: true})
		if err != nil {
			b.Fatal(err)
		}
		if len(res.Kept) == 0 {
			b.Fatal("empty coverage set")
		}
	}
}
