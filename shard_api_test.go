package dcc

import (
	"reflect"
	"testing"

	"dcc/internal/core"
)

// TestShardCountEquivalence: the public sharded scheduler must return a
// byte-identical ScheduleResult for every shard count × worker count
// combination, and that result must equal the unsharded canonical-mode
// engine on the same repaired network — the equivalence contract of
// DESIGN.md §15, asserted at the API boundary.
func TestShardCountEquivalence(t *testing.T) {
	const tau = 4
	seeds := []int64{1, 5}
	if testing.Short() {
		seeds = seeds[:1] // smoke slice for the check.sh race gate
	}
	for _, seed := range seeds {
		// AvgDegree 12 keeps 2-hop verdict balls small enough that the
		// full sweep stays fast under the check.sh race gate; density is
		// orthogonal to the equivalence contract being pinned here.
		dep, err := Deploy(DeployOptions{Nodes: 150, Seed: seed, AvgDegree: 12})
		if err != nil {
			t.Fatal(err)
		}
		net, _, err := core.RepairBoundaries(dep.Network())
		if err != nil {
			t.Fatal(err)
		}
		want, err := core.Schedule(net, core.Options{Tau: tau, Seed: seed, Mode: core.Canonical})
		if err != nil {
			t.Fatal(err)
		}
		if want.Stats.Deletions == 0 {
			t.Fatalf("seed %d: degenerate scenario, canonical engine deleted nothing", seed)
		}
		for _, shards := range []int{1, 2, 4, 9} {
			for _, workers := range []int{1, 4} {
				got, err := dep.ScheduleDCCSharded(tau, ShardOptions{Seed: seed, Workers: workers, Shards: shards})
				if err != nil {
					t.Fatalf("seed=%d shards=%d workers=%d: %v", seed, shards, workers, err)
				}
				if !reflect.DeepEqual(want, got) {
					t.Fatalf("seed=%d shards=%d workers=%d: sharded result differs from the unsharded canonical engine\nwant stats %+v\ngot  stats %+v",
						seed, shards, workers, want.Stats, got.Stats)
				}
			}
		}
	}
}

// TestShardedQuasiUDG: the sharded engine must accept non-geometric link
// models through the explicit graph (quasi-UDG links cannot be re-derived
// from positions) and still match the unsharded canonical engine.
func TestShardedQuasiUDG(t *testing.T) {
	dep, err := Deploy(DeployOptions{Nodes: 120, Seed: 9, Model: QuasiUDG})
	if err != nil {
		t.Fatal(err)
	}
	net, _, err := core.RepairBoundaries(dep.Network())
	if err != nil {
		t.Fatal(err)
	}
	want, err := core.Schedule(net, core.Options{Tau: 4, Seed: 9, Mode: core.Canonical})
	if err != nil {
		t.Fatal(err)
	}
	got, err := dep.ScheduleDCCSharded(4, ShardOptions{Seed: 9, Shards: 4})
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(want, got) {
		t.Fatal("sharded quasi-UDG schedule differs from the unsharded canonical engine")
	}
}

// TestShardedTelemetryNeutral: attaching a registry must not change the
// sharded schedule (the observability contract), and the deterministic
// shard counters must be worker-count invariant.
func TestShardedTelemetryNeutral(t *testing.T) {
	dep, err := Deploy(DeployOptions{Nodes: 120, Seed: 4})
	if err != nil {
		t.Fatal(err)
	}
	bare, err := dep.ScheduleDCCSharded(4, ShardOptions{Seed: 4, Shards: 4})
	if err != nil {
		t.Fatal(err)
	}
	counters := func(workers int) (ScheduleResult, *Telemetry) {
		reg := NewTelemetry()
		res, err := dep.ScheduleDCCSharded(4, ShardOptions{Seed: 4, Shards: 4, Workers: workers, Telemetry: reg})
		if err != nil {
			t.Fatal(err)
		}
		return res, reg
	}
	res1, reg1 := counters(1)
	res4, reg4 := counters(4)
	if !reflect.DeepEqual(bare, res1) || !reflect.DeepEqual(bare, res4) {
		t.Fatal("telemetry collection changed the sharded schedule")
	}
	if reg1.Fingerprint() != reg4.Fingerprint() {
		t.Fatal("deterministic shard metrics differ across worker counts")
	}
	if reg1.Counter("shard.batches").Value() == 0 || reg1.Counter("shard.tests").Value() == 0 {
		t.Fatal("expected shard.batches and shard.tests counters to be populated")
	}
}
