module dcc

go 1.22
