package dcc

import (
	"math"
	"testing"
)

// TestProposition1PartialBound validates the partial-coverage branch of
// Proposition 1 end to end: with 2·sin(π/τ) < γ ≤ 2, a τ-confine coverage
// set leaves holes of diameter at most (τ−2)·Rc. The guarantee applies
// when the deployment satisfies the τ criterion initially (Theorem 5's
// precondition), so runs are gated on AchievableTau.
func TestProposition1PartialBound(t *testing.T) {
	checked := 0
	for _, cfg := range []struct {
		seed int64
		tau  int
	}{
		{seed: 21, tau: 5},
		{seed: 22, tau: 6},
		{seed: 23, tau: 4},
	} {
		dep, err := Deploy(DeployOptions{Nodes: 220, Seed: cfg.seed, Gamma: 2.0})
		if err != nil {
			t.Fatal(err)
		}
		minTau, err := dep.AchievableTau(cfg.tau)
		if err != nil || minTau > cfg.tau {
			continue // precondition not met on this instance
		}
		res, err := dep.ScheduleDCC(cfg.tau, ScheduleOptions{Seed: cfg.seed})
		if err != nil {
			t.Fatal(err)
		}
		ok, err := dep.VerifyConfine(res.Final, cfg.tau)
		if err != nil {
			t.Fatal(err)
		}
		if !ok {
			t.Fatalf("seed %d: criterion lost during scheduling", cfg.seed)
		}
		rep := dep.CoverageReport(res.Final, 0)
		bound := float64(cfg.tau-2) * dep.Rc
		slack := 2 * math.Sqrt2 * rep.Resolution
		if d := rep.MaxHoleDiameter(); d > bound+slack {
			t.Fatalf("seed %d τ=%d: hole diameter %.3f exceeds bound %.3f",
				cfg.seed, cfg.tau, d, bound)
		}
		checked++
	}
	if checked == 0 {
		t.Skip("no instance satisfied the precondition; loosen configs")
	}
}

// TestProposition1BlanketThresholds validates the blanket branch at the
// exact thresholds: γ = 2·sin(π/τ) admits blanket coverage for each τ.
func TestProposition1BlanketThresholds(t *testing.T) {
	for tau := 3; tau <= 8; tau++ {
		gamma := 2 * math.Sin(math.Pi/float64(tau))
		got, err := PlanTau(Requirement{Gamma: gamma})
		if err != nil {
			t.Fatalf("τ=%d (γ=%.4f): %v", tau, gamma, err)
		}
		if got != tau {
			t.Fatalf("PlanTau(γ=2sin(π/%d)) = %d, want %d", tau, got, tau)
		}
		// Just above the threshold, the blanket branch must drop to τ−1.
		if tau > 3 {
			got, err = PlanTau(Requirement{Gamma: gamma * 1.001})
			if err != nil {
				t.Fatalf("τ=%d above threshold: %v", tau, err)
			}
			if got != tau-1 {
				t.Fatalf("PlanTau just above γ(τ=%d) = %d, want %d", tau, got, tau-1)
			}
		}
	}
}
