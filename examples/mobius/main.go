// Möbius example (paper Figure 1): the separating instance between the
// cycle-partition criterion and the homology-group criterion.
//
// The network's connectivity forms a möbius band: twelve nodes, an outer
// boundary 8-cycle, and sixteen connectivity triangles wrapping twice
// around a core 4-cycle. Every point under the band is covered (for
// γ ≤ √3), and indeed the outer boundary is the GF(2) sum of all sixteen
// triangles — so the cycle-partition criterion certifies 3-confine (full
// blanket) coverage. The first homology group, however, has the type of a
// circle: the homology criterion reports a hole that does not exist.
package main

import (
	"fmt"
	"log"

	"dcc/internal/cycles"
	"dcc/internal/graph"
	"dcc/internal/hgc"
	"dcc/internal/nets"
)

func main() {
	g, k, boundaryOrder := nets.Mobius()
	fmt.Printf("möbius network: %d nodes, %d links, %d triangles\n",
		g.NumNodes(), g.NumEdges(), k.NumTriangles())

	// Homology-group criterion (HGC, Ghrist et al.).
	fmt.Printf("H1 rank over GF(2): %d → HGC verdict: covered=%v\n",
		k.H1Rank(), hgc.Verify(g, nil))

	// Cycle-partition criterion (this paper).
	outer, err := cycles.FromVertices(g, boundaryOrder)
	if err != nil {
		log.Fatal(err)
	}
	target := outer.Vector(g.NumEdges())
	fmt.Printf("cycle-partition verdict: covered=%v\n",
		cycles.Partitionable(g, target, 3))

	// Exhibit the witness: an explicit 3-partition of the outer boundary.
	part, err := cycles.FindPartition(g, target, 3)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("explicit cycle partition of the outer boundary: %d triangles\n", len(part))
	for i, c := range part {
		order, err := cycles.VertexOrder(g, c)
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("  triangle %2d: %v\n", i+1, names(order))
	}

	fmt.Println("\nwhy HGC fails: the core circle cannot shrink across the band —")
	core4 := []graph.NodeID{8, 9, 10, 11}
	c, err := cycles.FromVertices(g, core4)
	if err != nil {
		log.Fatal(err)
	}
	_, err = cycles.FindPartition(g, c.Vector(g.NumEdges()), 3)
	fmt.Printf("core circle %v 3-partitionable: %v\n", names(core4), err == nil)
}

// names maps node IDs to the paper's labels: 0..7 → a..h, 8..11 → 1..4.
func names(ids []graph.NodeID) []string {
	out := make([]string, len(ids))
	for i, id := range ids {
		if id < 8 {
			out[i] = string(rune('a' + id))
		} else {
			out[i] = fmt.Sprint(int(id) - 7)
		}
	}
	return out
}
