// Surveillance example: partial coverage with a guaranteed worst-case
// quality of coverage (QoC), the paper's motivating scenario for
// configurable granularity (§III-B/C).
//
// A target-tracking application tolerates coverage holes as long as a
// moving target cannot travel far undetected: the worst-case hole diameter
// bounds the longest straight-line escape. With weak sensors (γ = Rc/Rs
// = 2, i.e. Rs = Rc/2) blanket coverage is unattainable by any
// connectivity-only method, but confine coverage still yields a
// determinate bound: τ-confine coverage caps hole diameters at (τ−2)·Rc.
//
// The example compares the triangle-granularity schedule (τ=3, all HGC can
// do) against the τ planned from the application's actual QoC demand, and
// validates both the bound and the energy savings.
package main

import (
	"fmt"
	"log"

	"dcc"
)

func main() {
	const gamma = 2.0     // Rs = Rc/2: weak sensing
	const maxEscape = 3.0 // QoC demand: holes no wider than 3·Rc
	// Resample until the deployment is fully 3-partitionable, so that the
	// triangle-granularity baseline is meaningful (the regime in which the
	// homology baseline is defined; see EXPERIMENTS.md).
	var dep *dcc.Deployment
	for seed := int64(7); ; seed++ {
		d, err := dcc.Deploy(dcc.DeployOptions{
			Nodes:     400,
			AvgDegree: 25,
			Gamma:     gamma,
			Seed:      seed,
		})
		if err != nil {
			log.Fatal(err)
		}
		if tau, err := d.AchievableTau(3); err == nil && tau == 3 {
			dep = d
			break
		}
	}
	fmt.Printf("surveillance field: %d nodes, Rc=%.2f, Rs=%.2f (γ=%.1f)\n",
		dep.G.NumNodes(), dep.Rc, dep.Rs, gamma)

	// Blanket coverage is infeasible at γ=2 for any connectivity method.
	if _, err := dcc.PlanTau(dcc.Requirement{Gamma: gamma}); err != nil {
		fmt.Println("blanket coverage: infeasible at γ=2 (as expected)")
	}

	// The QoC demand admits τ = Dmax/Rc + 2.
	tau, err := dcc.PlanTau(dcc.Requirement{Gamma: gamma, MaxHoleDiameter: maxEscape})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("QoC demand Dmax ≤ %.1f·Rc → τ=%d confine coverage\n", maxEscape, tau)

	baseline, err := dep.ScheduleDCC(3, dcc.ScheduleOptions{Seed: 7, Parallel: true})
	if err != nil {
		log.Fatal(err)
	}
	tuned, err := dep.ScheduleDCC(tau, dcc.ScheduleOptions{Seed: 7, Parallel: true})
	if err != nil {
		log.Fatal(err)
	}
	n1, n2 := len(baseline.KeptInternal), len(tuned.KeptInternal)
	fmt.Printf("triangle granularity (τ=3): %d nodes awake\n", n1)
	fmt.Printf("planned granularity (τ=%d): %d nodes awake\n", tau, n2)
	if n1 > 0 {
		fmt.Printf("nodes saved by exploiting the QoC budget: λ = %.1f%%\n",
			100*float64(n1-n2)/float64(n1))
	}

	// Ground truth: the worst hole must respect the Proposition 1 bound.
	rep := dep.CoverageReport(tuned.Final, 0)
	bound := float64(tau-2) * dep.Rc
	fmt.Printf("worst-case hole: measured %.3f, guaranteed bound %.3f (τ−2)·Rc\n",
		rep.MaxHoleDiameter(), bound)
	if rep.MaxHoleDiameter() <= bound+2*rep.Resolution {
		fmt.Println("QoC guarantee holds")
	} else {
		fmt.Println("WARNING: QoC bound violated — please report a bug")
	}
}
