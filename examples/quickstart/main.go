// Quickstart: deploy a random sensor network, pick the confine size for a
// coverage requirement, schedule a sparse coverage set with only
// connectivity information, and validate the result against ground truth.
package main

import (
	"fmt"
	"log"
	"math"

	"dcc"
)

func main() {
	// 1. Deploy 400 sensors uniformly at random; the communication radius
	//    is derived from the requested average degree (≈25, as in the
	//    paper's simulations) and γ = Rc/Rs = 1 gives generous sensing.
	dep, err := dcc.Deploy(dcc.DeployOptions{
		Nodes:     400,
		AvgDegree: 25,
		Gamma:     1.0,
		Seed:      42,
	})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("deployed %d nodes (%d boundary), %d links, Rc=%.2f Rs=%.2f\n",
		dep.G.NumNodes(), len(dep.BoundaryNodes), dep.G.NumEdges(), dep.Rc, dep.Rs)

	// 2. Pick the largest confine size that still guarantees full blanket
	//    coverage (Proposition 1): γ=1 admits τ=6.
	tau, err := dcc.PlanTau(dcc.Requirement{Gamma: dep.Gamma()})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("requirement: blanket coverage at γ=%.2f → confine size τ=%d\n", dep.Gamma(), tau)

	// 3. Schedule: maximal vertex deletion under the void-preserving
	//    transformation, using only connectivity.
	res, err := dep.ScheduleDCC(tau, dcc.ScheduleOptions{Seed: 42, Parallel: true})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("coverage set: %d of %d internal nodes kept (%d turned off)\n",
		len(res.KeptInternal), len(res.KeptInternal)+len(res.Deleted), len(res.Deleted))
	fmt.Printf("work: %d deletability tests in %d rounds\n", res.Stats.Tests, res.Stats.Rounds)

	// 4. Verify the graph-theoretic criterion on the reduced network.
	ok, err := dep.VerifyConfine(res.Final, tau)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("cycle-partition criterion (τ=%d): %v\n", tau, ok)

	// 5. Validate against geometric ground truth (the scheduler never saw
	//    these coordinates).
	rep := dep.CoverageReport(res.Final, 0)
	fmt.Printf("ground truth: %.1f%% of the core area covered, max hole diameter %.3f\n",
		100*rep.CoveredFraction, rep.MaxHoleDiameter())
	if rep.MaxHoleDiameter() <= 2*math.Sqrt2*rep.Resolution {
		fmt.Println("blanket coverage confirmed (no holes beyond sampling slack)")
	}
}
