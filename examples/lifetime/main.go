// Lifetime example: sleep rotation with confine coverage — the
// energy-efficiency application that motivates partial coverage in the
// paper (§III-B: "always-on full blanket coverage will exhaust network
// energy rapidly").
//
// Each epoch keeps a sparse τ-confine coverage set awake while everyone
// else sleeps; between epochs duty shifts to the nodes that have worked the
// least. The example reports per-epoch coverage-set sizes, how evenly duty
// is spread, and the lifetime multiplier over an always-on network. It
// finishes by thinning redundant links from one epoch's topology with the
// edge-deletion operator of the void-preserving transformation.
package main

import (
	"fmt"
	"log"

	"dcc"
)

func main() {
	dep, err := dcc.Deploy(dcc.DeployOptions{
		Nodes:     350,
		AvgDegree: 25,
		Gamma:     1.0, // τ=6 still guarantees blanket coverage
		Seed:      11,
	})
	if err != nil {
		log.Fatal(err)
	}
	tau, err := dcc.PlanTau(dcc.Requirement{Gamma: dep.Gamma()})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("network: %d nodes, blanket coverage via τ=%d confine sets\n",
		dep.G.NumNodes(), tau)

	const epochs = 6
	rotation, err := dep.Rotate(tau, epochs, 11)
	if err != nil {
		log.Fatal(err)
	}

	duty := make(map[dcc.NodeID]int)
	total := 0
	for _, ep := range rotation {
		n := len(ep.Result.KeptInternal)
		total += n
		for _, v := range ep.Result.KeptInternal {
			duty[v]++
		}
		ok, err := dep.VerifyConfine(ep.Result.Final, tau)
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("epoch %d: %3d internal nodes awake (criterion: %v)\n", ep.Epoch, n, ok)
	}

	distinct := len(duty)
	maxDuty := 0
	for _, d := range duty {
		if d > maxDuty {
			maxDuty = d
		}
	}
	avg := float64(total) / float64(epochs)
	fmt.Printf("\nduty spread: %d distinct nodes served (%.0f awake per epoch on average)\n",
		distinct, avg)
	fmt.Printf("worst-case duty: %d of %d epochs\n", maxDuty, epochs)
	if maxDuty < epochs {
		fmt.Println("no node stayed awake through every epoch — rotation is working")
	}
	// Lifetime multiplier vs always-on: every node awake costs 1 unit per
	// epoch; with rotation only the active set pays.
	internals := dep.G.NumNodes() - len(dep.BoundaryNodes)
	fmt.Printf("energy per epoch: %.0f vs %d always-on → ×%.1f lifetime at equal budget\n",
		avg, internals, float64(internals)/avg)

	// Bonus: thin redundant links from the last epoch's topology.
	last := rotation[len(rotation)-1].Result.Final
	thinned, removed, err := dep.ThinEdges(last, tau, 11)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("\nedge thinning on the final epoch: %d → %d links (%d removed), guarantee intact\n",
		last.NumEdges(), thinned.NumEdges(), len(removed))
	ok, err := dep.VerifyConfine(thinned, tau)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("criterion after thinning: %v\n", ok)
}
