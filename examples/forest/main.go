// Forest example: the GreenOrbs-trace scenario of the paper's §VI-B,
// end to end — synthesise a two-day packet trace from a forest-like
// deployment, extract the communication graph via the best-RSSI-record
// pipeline, and run both the centralized and the fully distributed
// (message-passing) coverage schedulers on the resulting irregular,
// non-UDG topology.
package main

import (
	"fmt"
	"log"

	"dcc/internal/core"
	"dcc/internal/dist"
	"dcc/internal/stats"
	"dcc/internal/trace"
)

func main() {
	// 1. Two days of packets from ~300 motes in a 100m × 14m forest strip.
	tr := trace.Generate(trace.Config{Seed: 2026, InteriorNodes: 200, Epochs: 96})
	fmt.Printf("trace: %d motes (%d on the boundary ring)\n", len(tr.Pts), len(tr.Ring))

	// 2. RSSI statistics and edge extraction (Figure 5's pipeline).
	values := tr.RSSIValues()
	cdf := stats.NewCDF(values)
	threshold := tr.ThresholdForFraction(0.8)
	fmt.Printf("accumulated %d undirected links; median RSSI %.1f dBm\n",
		len(values), cdf.Quantile(0.5))
	fmt.Printf("threshold retaining 80%% of links: %.1f dBm (paper: ≈ −85 dBm)\n", threshold)

	net, err := tr.Network(threshold)
	if err != nil {
		log.Fatal(err)
	}
	deg := 2 * float64(net.G.NumEdges()) / float64(net.G.NumNodes())
	fmt.Printf("extracted graph: %d nodes, %d edges, avg degree %.1f\n",
		net.G.NumNodes(), net.G.NumEdges(), deg)

	minTau, err := core.AchievableTau(net, 8)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("boundary becomes partitionable at τ=%d\n", minTau)

	// 3. Centralized sweep (Figure 6's series).
	fmt.Println("\ncentralized DCC sweep:")
	for tau := minTau; tau <= minTau+3; tau++ {
		res, err := core.Schedule(net, core.Options{Tau: tau, Seed: 1, Mode: core.Parallel})
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("  τ=%d: %d internal nodes stay awake\n", tau, len(res.KeptInternal))
	}

	// 4. Fully distributed run with message accounting, including 5%
	//    message loss to exercise the protocol's robustness.
	fmt.Println("\ndistributed DCC (τ=+1, with 5% message loss):")
	res, err := dist.Run(net, dist.Config{Tau: minTau + 1, Seed: 1, Loss: 0.05})
	if err != nil {
		log.Fatal(err)
	}
	s := res.Stats
	fmt.Printf("  kept %d internal nodes; deleted %d\n", len(res.KeptInternal), len(res.Deleted))
	fmt.Printf("  %d radio rounds, %d broadcasts, %d receptions, %d local tests, %d rounds\n",
		s.CommRounds, s.Broadcasts, s.Delivered, s.Tests, s.Rounds)

	ok, err := core.VerifyConfine(res.Final, net.BoundaryCycles, minTau+1)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("  global cycle-partition criterion after the run: %v\n", ok)
}
